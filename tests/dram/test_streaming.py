"""Bounded-window streaming simulation vs the in-memory array path.

``simulate_trace_streaming`` feeds ``.dramtrace`` chunks through
resumable per-channel drains that compact completed requests at every
chunk boundary; these tests pin the chunk-boundary stitching: the
full ``ControllerStats`` block must be *bit-identical* to
``simulate_arrays`` on the same columns for every admission window --
including windows far smaller than the trace, which force many
compaction/renumber cycles per channel.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np
import pytest

from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533
from repro.dram.controller import ControllerStats, MemoryController, SchedulerPolicy
from repro.workloads.trace_io import generate_trace_file, write_trace
from repro.workloads.traces import generate_trace_arrays

SMALL_ORG = DRAMOrganization(
    n_channels=2,
    n_ranks=1,
    n_bankgroups=2,
    banks_per_group=2,
    n_rows=128,
    row_bytes=512,
    access_bytes=64,
)
SMALL_CONFIG = DRAMConfig(organization=SMALL_ORG, timing=LPDDR5X_8533.timing)


def make_trace(tmp_path, pattern, n, config, seed=5, arrival=None, gap=8.0):
    path = tmp_path / f"{pattern}.dramtrace"
    generate_trace_file(
        path, pattern, n, config=config, seed=seed, arrival=arrival, arrival_gap=gap
    )
    cols = generate_trace_arrays(
        pattern, n, config=config, seed=seed, arrival=arrival, arrival_gap=gap
    )
    return path, cols


@pytest.mark.parametrize("arrival", [None, "poisson", "onoff"])
@pytest.mark.parametrize("window", [64, 257, 1000, 4000, 10_000])
def test_streaming_bit_identical(tmp_path, arrival, window):
    path, cols = make_trace(tmp_path, "random", 4000, SMALL_CONFIG, arrival=arrival)
    reference = MemoryController(SMALL_CONFIG).simulate_arrays(*cols)
    streamed = MemoryController(SMALL_CONFIG).simulate_trace_streaming(
        path, window=window
    )
    assert asdict(streamed) == asdict(reference)


@pytest.mark.parametrize("pattern", ["streaming", "random", "moe-skewed"])
def test_streaming_paper_config_patterns(tmp_path, pattern):
    path, cols = make_trace(
        tmp_path, pattern, 5000, LPDDR5X_8533, arrival="poisson", gap=6.0
    )
    reference = MemoryController(LPDDR5X_8533).simulate_arrays(*cols)
    streamed = MemoryController(LPDDR5X_8533).simulate_trace_streaming(
        path, window=617
    )
    assert asdict(streamed) == asdict(reference)


def test_streaming_fcfs_and_small_window(tmp_path):
    path, cols = make_trace(tmp_path, "random", 1500, SMALL_CONFIG, arrival="poisson")
    kwargs = dict(policy=SchedulerPolicy.FCFS, window=4, starvation_cap=8)
    reference = MemoryController(SMALL_CONFIG, **kwargs).simulate_arrays(*cols)
    streamed = MemoryController(SMALL_CONFIG, **kwargs).simulate_trace_streaming(
        path, window=100
    )
    assert asdict(streamed) == asdict(reference)


def test_streaming_writes_and_priorities(tmp_path):
    """Write flags survive the chunked split; priority bits ride along."""
    from repro.workloads.trace_io import pack_flags

    rng = np.random.default_rng(3)
    n = 2000
    addrs = rng.integers(0, SMALL_ORG.total_capacity_bytes, n) // 64 * 64
    arrive = np.sort(rng.integers(0, 5000, n)).astype(np.int64)
    flags = pack_flags(rng.random(n) < 0.4, priority=rng.integers(0, 8, n))
    path = tmp_path / "wr.dramtrace"
    write_trace(path, addrs, arrive, flags)
    reference = MemoryController(SMALL_CONFIG).simulate_arrays(addrs, arrive, flags)
    streamed = MemoryController(SMALL_CONFIG).simulate_trace_streaming(path, window=333)
    assert asdict(streamed) == asdict(reference)
    assert streamed.writes == int((np.asarray(flags) & 1).sum())


def test_streaming_empty_trace(tmp_path):
    """Zero-request traces return zeroed stats (the empty-delays
    regression: queue stats must not crash on n=0)."""
    path = tmp_path / "empty.dramtrace"
    write_trace(path, np.zeros(0, dtype=np.int64))
    stats = MemoryController(SMALL_CONFIG).simulate_trace_streaming(path)
    assert stats.requests == 0
    assert stats.total_cycles == 0
    assert stats.queue_delay_mean == 0.0
    assert stats.queue_delay_max == 0


def test_streaming_rejects_unsorted_arrivals(tmp_path):
    """Chunked admission cannot re-sort; out-of-order arrivals on a
    channel must be rejected, not silently mis-simulated."""
    n = 200
    addrs = np.arange(n, dtype=np.int64) * 64
    arrive = np.arange(n, dtype=np.int64)
    arrive[50] = 5000  # later arrival ahead of earlier ones
    path = tmp_path / "unsorted.dramtrace"
    write_trace(path, addrs, arrive)
    with pytest.raises(ValueError, match="non-decreasing"):
        MemoryController(SMALL_CONFIG).simulate_trace_streaming(path, window=64)


def test_streaming_rejects_bad_window(tmp_path):
    path = tmp_path / "t.dramtrace"
    write_trace(path, np.zeros(4, dtype=np.int64))
    with pytest.raises(ValueError, match="window"):
        MemoryController(SMALL_CONFIG).simulate_trace_streaming(path, window=0)


def test_fill_queue_stats_empty_regression():
    """Direct regression for the n=0 crash: mean/percentile/max on an
    empty delay array must leave zeroed queue stats."""
    stats = ControllerStats()
    MemoryController._fill_queue_stats(stats, np.zeros(0, dtype=np.int64))
    assert stats.queue_delay_mean == 0.0
    assert stats.queue_delay_p50 == 0.0
    assert stats.queue_delay_p99 == 0.0
    assert stats.queue_delay_max == 0


def test_simulate_arrays_empty_trace_regression():
    """simulate_arrays on an empty trace: zeroed stats and empty
    detail arrays, no queue-stat crash."""
    controller = MemoryController(SMALL_CONFIG)
    stats, timings = controller.simulate_arrays(
        np.zeros(0, dtype=np.int64), detail=True
    )
    assert stats.requests == 0
    assert stats.queue_delay_mean == 0.0
    assert len(timings) == 0


def test_iter_chunks_offsets(tmp_path):
    from repro.workloads.trace_io import load_trace

    n = 10
    addrs = np.arange(n, dtype=np.int64) * 64
    path = tmp_path / "o.dramtrace"
    write_trace(path, addrs)
    trace = load_trace(path)
    offsets = []
    rows = 0
    for lo, (a, c, f) in trace.iter_chunks(4, with_offsets=True):
        offsets.append(lo)
        rows += len(a)
    assert offsets == [0, 4, 8]
    assert rows == n
