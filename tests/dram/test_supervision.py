"""Worker supervision: deterministic faults, recovery, bookkeeping.

Every fault the supervisor in :mod:`repro.dram.parallel` claims to
survive is injected here on exact coordinates (channel, attempt count)
via :mod:`repro.faults`, and every recovery must reproduce the serial
path bit for bit while recording what it did in the
:class:`~repro.dram.resilience.ResilienceReport`.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533
from repro.dram.controller import MemoryController
from repro.dram.parallel import ParallelDrainError, ParallelDrainExecutor
from repro.faults import worker_faults
from repro.workloads.traces import generate_trace_arrays

QUAD_ORG = DRAMOrganization(
    n_channels=4,
    n_ranks=1,
    n_bankgroups=2,
    banks_per_group=2,
    n_rows=128,
    row_bytes=512,
    access_bytes=64,
)
QUAD_CONFIG = DRAMConfig(organization=QUAD_ORG, timing=LPDDR5X_8533.timing)


@pytest.fixture(scope="module")
def columns():
    return generate_trace_arrays(
        "random", 800, config=QUAD_CONFIG, seed=11,
        arrival="poisson", arrival_gap=6.0,
    )


@pytest.fixture(scope="module")
def serial_stats(columns):
    return MemoryController(QUAD_CONFIG).simulate_arrays(*columns)


def drain_with_executor(columns, **executor_kwargs):
    executor_kwargs.setdefault("backoff_base", 0.01)
    executor_kwargs.setdefault("backoff_cap", 0.02)
    with ParallelDrainExecutor(2, **executor_kwargs) as executor:
        controller = MemoryController(QUAD_CONFIG, executor=executor)
        return controller.simulate_arrays(*columns)


def test_clean_run_records_nothing(columns, serial_stats):
    stats = drain_with_executor(columns)
    assert asdict(stats) == asdict(serial_stats)
    assert not stats.resilience.degraded
    assert stats.resilience.summary() == "clean (no degradations)"


def test_resilience_report_invisible_to_asdict(columns):
    """The bit-identity gates compare asdict(stats); a degraded run
    must not change that shape."""
    stats = drain_with_executor(columns)
    assert "resilience" not in asdict(stats)


def test_killed_worker_respawned_and_retried(columns, serial_stats):
    with worker_faults("kill", times=1):
        stats = drain_with_executor(columns)
    assert asdict(stats) == asdict(serial_stats)
    r = stats.resilience
    assert r.worker_deaths >= 1
    assert r.pool_respawns >= 1
    assert r.task_retries >= 1
    assert r.serial_fallbacks == 0


def test_transient_raise_retried_to_success(columns, serial_stats):
    """One poisoned attempt on one channel: a single retry fixes it
    without respawning the pool or degrading to serial."""
    with worker_faults("raise", channel=2, times=1):
        stats = drain_with_executor(columns)
    assert asdict(stats) == asdict(serial_stats)
    r = stats.resilience
    assert r.task_retries == 1
    assert r.events[0].channel == 2
    assert r.serial_fallbacks == 0
    assert r.pool_respawns == 0


def test_persistent_raise_degrades_to_serial(columns, serial_stats):
    """Sabotage beyond the retry budget: every channel exhausts its
    attempts and the parent drains it serially -- still bit-identical."""
    with worker_faults("raise", times=64) as plan:
        stats = drain_with_executor(columns, max_retries=1)
        fired = plan.injections_fired()
    assert asdict(stats) == asdict(serial_stats)
    r = stats.resilience
    assert r.serial_fallbacks == 4  # every channel
    # max_retries=1 => 2 attempts per channel, 1 retry event each.
    assert r.task_retries == 4
    assert fired == 8  # 4 channels x 2 attempts


def test_hung_worker_times_out_and_recovers(columns, serial_stats):
    with worker_faults("hang", channel=1, times=1, hang_seconds=30.0):
        stats = drain_with_executor(columns, task_timeout=1.0)
    assert asdict(stats) == asdict(serial_stats)
    r = stats.resilience
    assert r.task_timeouts >= 1
    assert r.pool_respawns >= 1
    assert asdict(stats) == asdict(serial_stats)


def test_retry_backoff_is_deterministic_and_capped():
    executor = ParallelDrainExecutor(2, backoff_base=0.05, backoff_cap=0.2)
    try:
        assert executor.backoff_seconds(1) == 0.05
        assert executor.backoff_seconds(2) == 0.10
        assert executor.backoff_seconds(3) == 0.20
        assert executor.backoff_seconds(10) == 0.20  # capped
    finally:
        executor.close()


def test_supervision_knob_validation():
    with pytest.raises(ValueError):
        ParallelDrainExecutor(2, task_timeout=0.0)
    with pytest.raises(ValueError):
        ParallelDrainExecutor(2, max_retries=-1)
    with pytest.raises(ValueError):
        ParallelDrainExecutor(2, backoff_base=-0.1)
    with pytest.raises(ValueError):
        ParallelDrainExecutor(2, poll_interval=0.0)


def test_controller_state_intact_after_recovery(columns, serial_stats):
    """A drain that limped home on retries must leave channel state
    exactly where a clean drain would: the next simulate call still
    matches serial."""
    serial = MemoryController(QUAD_CONFIG)
    with ParallelDrainExecutor(2, backoff_base=0.01, backoff_cap=0.02) as executor:
        par = MemoryController(QUAD_CONFIG, executor=executor)
        with worker_faults("raise", channel=0, times=1):
            first_par = par.simulate_arrays(*columns)
        first_serial = serial.simulate_arrays(*columns)
        assert asdict(first_par) == asdict(first_serial)
        assert first_par.resilience.task_retries == 1
        # Second, fault-free run carries the accumulated bank state.
        assert asdict(par.simulate_arrays(*columns)) == asdict(
            serial.simulate_arrays(*columns)
        )


def test_parallel_drain_error_is_runtime_error():
    assert issubclass(ParallelDrainError, RuntimeError)
