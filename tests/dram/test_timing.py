"""DRAM timing parameter handling."""

import pytest

from repro.dram.config import LPDDR5X_8533
from repro.dram.timing import DRAMTiming


def test_from_nanoseconds_rounds_up():
    t = DRAMTiming.from_nanoseconds(
        clock_hz=1e9,
        tRCD_ns=18.2,
        tRP_ns=18.0,
        tCL_ns=20.0,
        tCWL_ns=11.0,
        tRAS_ns=42.0,
        tCCD_S_ns=1.0,
        tCCD_L_ns=2.0,
        tRRD_ns=7.5,
        tFAW_ns=30.0,
        tWR_ns=34.0,
        tWTR_ns=12.0,
    )
    assert t.tRCD == 19  # ceil(18.2)
    assert t.tRP == 18
    assert t.tRAS == 42


def test_trc_is_tras_plus_trp():
    t = LPDDR5X_8533.timing
    assert t.tRC == t.tRAS + t.tRP


def test_cycle_time():
    t = LPDDR5X_8533.timing
    assert t.cycle_time == pytest.approx(1.0 / t.clock_hz)
    assert t.cycles_to_seconds(1000) == pytest.approx(1000 / t.clock_hz)


def test_ccd_ordering_enforced():
    with pytest.raises(ValueError):
        DRAMTiming(
            clock_hz=1e9, tRCD=1, tRP=1, tCL=1, tCWL=1, tRAS=1,
            tCCD_S=4, tCCD_L=2, tRRD=1, tFAW=1, tWR=1, tWTR=1,
        )


def test_negative_param_rejected():
    with pytest.raises(ValueError):
        DRAMTiming(
            clock_hz=1e9, tRCD=-1, tRP=1, tCL=1, tCWL=1, tRAS=1,
            tCCD_S=1, tCCD_L=1, tRRD=1, tFAW=1, tWR=1, tWTR=1,
        )


def test_lpddr5x_config_matches_paper():
    """Section 3.1: 8 channels, 68 GB/s each, 64 GB each."""
    org = LPDDR5X_8533.organization
    assert org.n_channels == 8
    assert LPDDR5X_8533.channel_peak_bandwidth == pytest.approx(68.26e9, rel=0.01)
    assert LPDDR5X_8533.peak_bandwidth == pytest.approx(8 * 68.26e9, rel=0.01)
    assert org.channel_capacity_bytes == 64 * 1024**3


def test_organization_validation():
    from repro.dram.config import DRAMOrganization

    with pytest.raises(ValueError):
        DRAMOrganization(row_bytes=100, access_bytes=64)
    with pytest.raises(ValueError):
        DRAMOrganization(n_channels=0)
