"""Vectorized decode_batch must match the scalar decoder exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.config import LPDDR5X_8533, DRAMOrganization

ORG = DRAMOrganization()


@pytest.mark.parametrize("scheme", list(MappingScheme))
def test_matches_scalar_decode(scheme):
    mapper = AddressMapper(ORG, scheme)
    rng = np.random.default_rng(3)
    addrs = (
        rng.integers(0, mapper.capacity_bytes // 64, size=500, dtype=np.int64) * 64
    )
    batch = mapper.decode_batch(addrs)
    assert len(batch) == 500
    for i, addr in enumerate(addrs.tolist()):
        assert batch[i] == mapper.decode(addr)


def test_flat_bank_index_matches():
    org = LPDDR5X_8533.organization
    mapper = AddressMapper(org)
    addrs = np.arange(0, 4096 * 64, 64, dtype=np.int64)
    batch = mapper.decode_batch(addrs)
    flat = batch.flat_bank_index(org.n_bankgroups, org.banks_per_group)
    for i in range(len(batch)):
        assert int(flat[i]) == batch[i].flat_bank_index(
            org.n_bankgroups, org.banks_per_group
        )


def test_accepts_python_lists():
    mapper = AddressMapper(ORG)
    batch = mapper.decode_batch([0, 64, 128])
    assert batch[1] == mapper.decode(64)


def test_rejects_negative():
    mapper = AddressMapper(ORG)
    with pytest.raises(ValueError, match="non-negative"):
        mapper.decode_batch([0, -64, 128])


def test_rejects_beyond_capacity():
    mapper = AddressMapper(ORG)
    with pytest.raises(ValueError, match="beyond device capacity"):
        mapper.decode_batch([0, mapper.capacity_bytes])


def test_reports_first_invalid_in_input_order():
    # Scalar-path parity: the *first* bad address wins, whatever its kind.
    mapper = AddressMapper(ORG)
    with pytest.raises(ValueError, match="beyond device capacity"):
        mapper.decode_batch([mapper.capacity_bytes, -64])
    with pytest.raises(ValueError, match="non-negative"):
        mapper.decode_batch([-64, mapper.capacity_bytes])


def test_rejects_beyond_int64():
    # Must match the scalar path's ValueError, not leak OverflowError.
    mapper = AddressMapper(ORG)
    with pytest.raises(ValueError, match="beyond device capacity"):
        mapper.decode_batch([0, 1 << 70])
    with pytest.raises(ValueError, match="non-negative"):
        mapper.decode_batch([-(1 << 70)])


def test_controller_rejects_beyond_int64():
    from repro.dram.controller import MemoryController
    from repro.dram.request import Request, RequestKind

    ctrl = MemoryController(LPDDR5X_8533)
    with pytest.raises(ValueError, match="beyond device capacity"):
        ctrl.simulate([Request(addr=1 << 70, kind=RequestKind.READ)])


def test_empty_batch():
    mapper = AddressMapper(ORG)
    assert len(mapper.decode_batch([])) == 0


def test_sequential_stream_still_python_ints():
    # Consumers hash/compare these; they must be plain ints, not numpy.
    mapper = AddressMapper(ORG)
    addrs = mapper.sequential_stream(0, 1024)
    assert all(type(a) is int for a in addrs)
    assert addrs[:3] == [0, 64, 128]
