"""FR-FCFS controller end-to-end behaviour."""

import numpy as np
import pytest

from repro.dram.address import MappingScheme
from repro.dram.config import LPDDR5X_8533
from repro.dram.controller import MemoryController, SchedulerPolicy
from repro.dram.request import Request, RequestKind


def seq_reads(n: int, step: int = 64, base: int = 0) -> list[Request]:
    return [Request(addr=base + i * step, kind=RequestKind.READ) for i in range(n)]


def test_all_requests_complete():
    ctrl = MemoryController(LPDDR5X_8533)
    reqs = seq_reads(256)
    stats = ctrl.simulate(reqs)
    assert stats.requests == 256
    assert all(r.is_done for r in reqs)
    assert stats.total_cycles > 0


def test_sequential_stream_row_hit_rate_is_high():
    ctrl = MemoryController(LPDDR5X_8533)
    stats = ctrl.simulate(seq_reads(4096))
    assert stats.row_hit_rate > 0.9


def test_sequential_stream_efficiency():
    """The paper's mapping sustains ~90% of peak for streams --
    'approximately 512 GB/s' from the 546 GB/s raw device."""
    ctrl = MemoryController(LPDDR5X_8533)
    stats = ctrl.simulate(seq_reads(8192))
    bw = ctrl.sustained_bandwidth(stats)
    assert bw > 0.85 * LPDDR5X_8533.peak_bandwidth


def test_row_major_mapping_is_much_worse():
    good = MemoryController(LPDDR5X_8533)
    naive = MemoryController(LPDDR5X_8533, scheme=MappingScheme.ROW_MAJOR)
    bw_good = good.sustained_bandwidth(good.simulate(seq_reads(2048)))
    bw_naive = naive.sustained_bandwidth(naive.simulate(seq_reads(2048)))
    assert bw_good / bw_naive > 4.0


def test_random_slower_than_sequential():
    rng = np.random.default_rng(3)
    ctrl_a = MemoryController(LPDDR5X_8533)
    ctrl_b = MemoryController(LPDDR5X_8533)
    blocks = rng.integers(0, 1 << 24, size=2048)
    random_reqs = [Request(addr=int(b) * 64, kind=RequestKind.READ) for b in blocks]
    bw_seq = ctrl_a.sustained_bandwidth(ctrl_a.simulate(seq_reads(2048)))
    bw_rand = ctrl_b.sustained_bandwidth(ctrl_b.simulate(random_reqs))
    assert bw_rand < 0.5 * bw_seq


def test_fcfs_never_beats_frfcfs():
    reqs_fr = seq_reads(1024)
    reqs_fc = seq_reads(1024)
    fr = MemoryController(LPDDR5X_8533, policy=SchedulerPolicy.FR_FCFS)
    fc = MemoryController(LPDDR5X_8533, policy=SchedulerPolicy.FCFS)
    t_fr = fr.simulate(reqs_fr).total_cycles
    t_fc = fc.simulate(reqs_fc).total_cycles
    assert t_fr <= t_fc


def test_writes_complete_and_counted():
    ctrl = MemoryController(LPDDR5X_8533)
    reqs = [
        Request(addr=i * 64, kind=RequestKind.WRITE if i % 2 else RequestKind.READ)
        for i in range(128)
    ]
    stats = ctrl.simulate(reqs)
    assert stats.reads == 64 and stats.writes == 64
    assert all(r.is_done for r in reqs)


def test_per_request_latency_positive():
    ctrl = MemoryController(LPDDR5X_8533)
    reqs = seq_reads(64)
    ctrl.simulate(reqs)
    for r in reqs:
        assert r.latency() >= LPDDR5X_8533.timing.tCL


def test_empty_request_list():
    ctrl = MemoryController(LPDDR5X_8533)
    stats = ctrl.simulate([])
    assert stats.requests == 0
    assert stats.total_cycles == 0
    assert ctrl.sustained_bandwidth(stats) == 0.0


def test_window_validation():
    with pytest.raises(ValueError):
        MemoryController(LPDDR5X_8533, window=0)


def test_single_bank_row_ping_pong_causes_conflicts_under_fcfs():
    """Alternating rows within one bank forces PRE/ACT cycling when
    the scheduler cannot reorder (FCFS)."""
    ctrl = MemoryController(LPDDR5X_8533, policy=SchedulerPolicy.FCFS)
    mapper = ctrl.mapper
    addrs = []
    for i in range(64):
        addrs.append(mapper.encode(0, 0, 0, 0, row=i % 2, column=(i // 2) % 32))
    reqs = [Request(addr=a, kind=RequestKind.READ) for a in addrs]
    stats = ctrl.simulate(reqs)
    assert stats.row_conflicts + stats.row_misses > 10
    assert stats.row_hit_rate < 0.7


def test_frfcfs_reorders_ping_pong_into_hits():
    """The same pattern under FR-FCFS is reordered into two row
    sweeps -- the scheduler's whole point."""
    ctrl = MemoryController(LPDDR5X_8533)
    mapper = ctrl.mapper
    addrs = [
        mapper.encode(0, 0, 0, 0, row=i % 2, column=(i // 2) % 32) for i in range(64)
    ]
    reqs = [Request(addr=a, kind=RequestKind.READ) for a in addrs]
    stats = ctrl.simulate(reqs)
    assert stats.row_hit_rate > 0.9
