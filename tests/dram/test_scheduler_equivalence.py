"""Bit-exactness of the indexed scheduler against the reference model.

The production :class:`MemoryController` reimplements the FR-FCFS
drain loop with indexed per-bank queues and cached candidates; the
original windowed-list implementation is preserved in
:mod:`repro.dram.reference`.  These tests run both over the same
traces and demand *identical* aggregate stats, per-request completion
cycles, row-hit classification, and (spot-checked) full command
streams -- across policies, window sizes, starvation caps, timing
corner cases, and access patterns.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.dram.address import MappingScheme
from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533
from repro.dram.controller import MemoryController, SchedulerPolicy
from repro.dram.reference import ReferenceMemoryController
from repro.dram.request import Request, RequestKind
from repro.dram.timing import DRAMTiming

# A small geometry so short traces still produce bank conflicts, row
# conflicts, and starvation pressure.
SMALL_ORG = DRAMOrganization(
    n_channels=2,
    n_ranks=1,
    n_bankgroups=2,
    banks_per_group=2,
    n_rows=64,
    row_bytes=512,
    access_bytes=64,
)

# Timing with distinct tCCD_S/tCCD_L, multi-cycle bursts, and a long
# write recovery: exercises every term of the candidate-ready formulas
# (the paper config collapses several of them to one cycle).
SPIKY_TIMING = DRAMTiming(
    clock_hz=1e9,
    tRCD=5,
    tRP=4,
    tCL=7,
    tCWL=3,
    tRAS=11,
    tCCD_S=2,
    tCCD_L=5,
    tRRD=3,
    tFAW=20,
    tWR=9,
    tWTR=4,
    burst_cycles=2,
)

SMALL_CONFIG = DRAMConfig(organization=SMALL_ORG, timing=SPIKY_TIMING)


def make_trace(config, n, seed, write_fraction=0.3, pattern="random"):
    rng = np.random.default_rng(seed)
    org = config.organization
    step = org.access_bytes
    capacity = org.total_capacity_bytes
    if pattern == "random":
        blocks = rng.integers(0, capacity // step, size=n)
    elif pattern == "stream":
        blocks = np.arange(n) % (capacity // step)
    elif pattern == "pingpong":
        # Alternate between two far-apart row regions of the same banks.
        half = capacity // step // 2
        blocks = np.where(np.arange(n) % 2 == 0, np.arange(n) % half, half + (np.arange(n) % half))
    else:
        raise ValueError(pattern)
    writes = rng.random(n) < write_fraction
    return [
        Request(
            addr=int(b) * step,
            kind=RequestKind.WRITE if w else RequestKind.READ,
        )
        for b, w in zip(blocks, writes)
    ]


def assert_equivalent(config, trace_kwargs, ctrl_kwargs):
    fast = MemoryController(config, **ctrl_kwargs)
    ref = ReferenceMemoryController(config, **ctrl_kwargs)
    fast_reqs = make_trace(config, **trace_kwargs)
    ref_reqs = make_trace(config, **trace_kwargs)

    fast_stats = fast.simulate(fast_reqs)
    ref_stats = ref.simulate(ref_reqs)

    assert dataclasses.asdict(fast_stats) == dataclasses.asdict(ref_stats)
    for i, (a, b) in enumerate(zip(fast_reqs, ref_reqs)):
        assert a.complete_cycle == b.complete_cycle, f"request {i}"
        assert a.row_hit == b.row_hit, f"request {i}"
        assert a.decoded == b.decoded, f"request {i}"
    # Post-drain channel/bank state must also agree (simulate() may be
    # called again on the same controller).
    for cf, cr in zip(fast.channels, ref.channels):
        assert cf._cmd_bus_next == cr._cmd_bus_next
        assert cf._data_bus_next == cr._data_bus_next
        assert cf._last_col_cycle == cr._last_col_cycle
        assert cf._last_col_bankgroup == cr._last_col_bankgroup
        assert cf._last_was_write == cr._last_was_write
        assert cf._read_after_write_ok == cr._read_after_write_ok
        assert cf._last_act_cycle == cr._last_act_cycle
        assert list(cf._act_history) == list(cr._act_history)
        for bf, br in zip(cf.banks, cr.banks):
            assert bf.open_row == br.open_row
            assert bf.earliest_act == br.earliest_act
            assert bf.earliest_pre == br.earliest_pre
            assert bf.earliest_col == br.earliest_col
            assert bf.row_hits == br.row_hits


@pytest.mark.parametrize("policy", [SchedulerPolicy.FR_FCFS, SchedulerPolicy.FCFS])
@pytest.mark.parametrize("window", [1, 8, 64])
@pytest.mark.parametrize("pattern", ["random", "stream", "pingpong"])
def test_policies_windows_patterns(policy, window, pattern):
    assert_equivalent(
        SMALL_CONFIG,
        dict(n=400, seed=11, pattern=pattern),
        dict(policy=policy, window=window),
    )


@pytest.mark.parametrize("cap", [1, 2, 5, 512])
def test_starvation_cap_edges(cap):
    assert_equivalent(
        SMALL_CONFIG,
        dict(n=300, seed=23, pattern="pingpong", write_fraction=0.5),
        dict(window=16, starvation_cap=cap),
    )


@pytest.mark.parametrize("seed", range(6))
def test_random_traces_paper_config(seed):
    assert_equivalent(
        LPDDR5X_8533,
        dict(n=300, seed=seed),
        dict(window=64),
    )


def test_paper_config_stream_and_row_major():
    assert_equivalent(LPDDR5X_8533, dict(n=500, seed=3, pattern="stream"), dict())
    assert_equivalent(
        LPDDR5X_8533,
        dict(n=300, seed=4),
        dict(scheme=MappingScheme.ROW_MAJOR),
    )


def test_read_only_and_write_only():
    assert_equivalent(SMALL_CONFIG, dict(n=250, seed=5, write_fraction=0.0), dict())
    assert_equivalent(SMALL_CONFIG, dict(n=250, seed=6, write_fraction=1.0), dict())


def test_command_streams_identical():
    fast = MemoryController(SMALL_CONFIG, window=8, starvation_cap=4)
    ref = ReferenceMemoryController(SMALL_CONFIG, window=8, starvation_cap=4)
    for c in fast.channels + ref.channels:
        c.record_commands = True
    fast.simulate(make_trace(SMALL_CONFIG, n=300, seed=7, pattern="pingpong"))
    ref.simulate(make_trace(SMALL_CONFIG, n=300, seed=7, pattern="pingpong"))
    for cf, cr in zip(fast.channels, ref.channels):
        assert cf.commands == cr.commands


def test_repeated_simulate_carries_state():
    # Channel/bank state persists across simulate() calls; both
    # implementations must agree on the second run too.
    fast = MemoryController(SMALL_CONFIG)
    ref = ReferenceMemoryController(SMALL_CONFIG)
    for seed in (31, 32):
        fast_reqs = make_trace(SMALL_CONFIG, n=150, seed=seed)
        ref_reqs = make_trace(SMALL_CONFIG, n=150, seed=seed)
        fs = fast.simulate(fast_reqs)
        rs = ref.simulate(ref_reqs)
        assert dataclasses.asdict(fs) == dataclasses.asdict(rs)
        assert [r.complete_cycle for r in fast_reqs] == [
            r.complete_cycle for r in ref_reqs
        ]


def test_single_request_and_empty():
    fast = MemoryController(SMALL_CONFIG)
    ref = ReferenceMemoryController(SMALL_CONFIG)
    assert dataclasses.asdict(fast.simulate([])) == dataclasses.asdict(ref.simulate([]))
    a = [Request(addr=0, kind=RequestKind.READ)]
    b = [Request(addr=0, kind=RequestKind.READ)]
    assert dataclasses.asdict(fast.simulate(a)) == dataclasses.asdict(ref.simulate(b))
    assert a[0].complete_cycle == b[0].complete_cycle
