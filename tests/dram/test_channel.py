"""Channel-level constraints: command bus, data bus, tFAW/tRRD."""

import pytest

from repro.dram.channel import Channel
from repro.dram.config import LPDDR5X_8533

T = LPDDR5X_8533.timing


@pytest.fixture
def channel() -> Channel:
    return Channel(0, LPDDR5X_8533)


def test_one_command_per_cycle(channel):
    channel.issue_activate(0, 0, 0)
    assert channel.earliest_act(1) >= 1


def test_trrd_between_activates(channel):
    channel.issue_activate(0, 0, 0)
    assert channel.earliest_act(1) >= T.tRRD


def test_tfaw_limits_activation_burst(channel):
    """A fifth ACT must wait for the tFAW window."""
    cycle = 0
    for bank in range(4):
        cycle = channel.earliest_act(bank)
        channel.issue_activate(cycle, bank, 0)
    fifth = channel.earliest_act(4)
    assert fifth >= channel._act_history[0] + T.tFAW


def test_data_bus_pipelines_behind_cas(channel):
    """Back-to-back reads to different bank groups issue every
    burst_cycles, not every tCL: the data bus constraint is pipelined
    behind the CAS latency."""
    channel.issue_activate(0, 0, 0)                   # bg 0
    second_bank = channel.bank_index(0, 1, 0)         # bg 1
    channel.issue_activate(T.tRRD, second_bank, 0)
    # Wait until both banks are column-ready, then read back to back.
    both_ready = max(
        channel.earliest_col(0, is_write=False),
        channel.earliest_col(second_bank, is_write=False),
    )
    channel.issue_read(both_ready, 0, 0)
    second_rd = channel.earliest_col(second_bank, is_write=False)
    assert second_rd - both_ready <= max(T.tCCD_S, T.burst_cycles) + 1


def test_write_to_read_turnaround(channel):
    channel.issue_activate(0, 0, 0)
    wr = channel.earliest_col(0, is_write=True)
    channel.issue_write(wr, 0, 0)
    rd = channel.earliest_col(0, is_write=False)
    # The read's *data* must wait out tWTR after the write burst.
    assert rd + T.tCL >= wr + T.tCWL + T.burst_cycles + T.tWTR


def test_bankgroup_mapping(channel):
    org = LPDDR5X_8533.organization
    for rank in range(org.n_ranks):
        for bg in range(org.n_bankgroups):
            for bank in range(org.banks_per_group):
                idx = channel.bank_index(rank, bg, bank)
                assert channel.bankgroup_of(idx) == bg


def test_command_recording(channel):
    channel.record_commands = True
    channel.issue_activate(0, 0, 5)
    rd = channel.earliest_col(0, is_write=False)
    channel.issue_read(rd, 0, 3)
    kinds = [c.kind.name for c in channel.commands]
    assert kinds == ["ACTIVATE", "READ"]
    assert channel.commands[0].row == 5
    assert channel.commands[1].column == 3
