"""Bandwidth calibration patterns."""

import pytest

from repro.dram.address import MappingScheme
from repro.dram.calibrate import BandwidthCalibrator
from repro.dram.config import LPDDR5X_8533
from repro.hw.specs import MONDE_DEVICE


@pytest.fixture(scope="module")
def cal() -> BandwidthCalibrator:
    return BandwidthCalibrator()


def test_sequential_efficiency(cal):
    result = cal.sequential_read(nbytes=1 << 19)
    assert result.efficiency > 0.85
    assert result.row_hit_rate > 0.9
    assert result.pattern == "sequential-read"


def test_random_is_slow(cal):
    seq = cal.sequential_read(nbytes=1 << 18)
    rand = cal.random_read(nbytes=1 << 17)
    assert rand.sustained_bandwidth < 0.4 * seq.sustained_bandwidth


def test_partitioned_beats_shared_banks(cal):
    """Section 3.4's even/odd bank partition avoids the row ping-pong
    of co-locating weights and activations."""
    part = cal.interleaved_streams(nbytes_each=1 << 17, partitioned=True)
    shared = cal.interleaved_streams(nbytes_each=1 << 17, partitioned=False)
    assert part.sustained_bandwidth > 1.2 * shared.sustained_bandwidth


def test_row_major_calibration_is_poor():
    naive = BandwidthCalibrator(scheme=MappingScheme.ROW_MAJOR)
    r = naive.sequential_read(nbytes=1 << 18)
    assert r.efficiency < 0.2


def test_effective_bandwidth_matches_spec_constant(cal):
    """The spec default (mem_efficiency) mirrors the calibrator."""
    measured = cal.effective_bandwidth(nbytes=1 << 19)
    assert measured == pytest.approx(MONDE_DEVICE.effective_bandwidth, rel=0.05)


def test_calibration_result_fields(cal):
    r = cal.sequential_read(nbytes=1 << 16)
    assert r.nbytes == 1 << 16
    assert r.peak_bandwidth == pytest.approx(LPDDR5X_8533.peak_bandwidth)
    assert r.total_cycles > 0
