"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import MoELayerEngine, Platform
from repro.moe import nllb_moe_128, nllb_moe_tiny, switch_large_128, switch_large_tiny


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def platform() -> Platform:
    return Platform()


@pytest.fixture
def sl128():
    return switch_large_128()


@pytest.fixture
def nllb():
    return nllb_moe_128()


@pytest.fixture
def sl_tiny():
    return switch_large_tiny()


@pytest.fixture
def nllb_tiny():
    return nllb_moe_tiny()


@pytest.fixture
def nllb_engine(nllb, platform) -> MoELayerEngine:
    return MoELayerEngine(nllb, platform)


def make_counts(n_experts: int, hot: dict[int, int], seed: int = 0) -> np.ndarray:
    """Helper: counts array with given hot experts."""
    counts = np.zeros(n_experts, dtype=np.int64)
    for expert, tokens in hot.items():
        counts[expert] = tokens
    return counts
