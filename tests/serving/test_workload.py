"""Request generation."""

import numpy as np
import pytest

from repro.serving.workload import Request, RequestGenerator


def test_arrivals_sorted_and_positive():
    gen = RequestGenerator(rate=10.0, seed=1)
    requests = gen.generate(100)
    arrivals = [r.arrival for r in requests]
    assert arrivals == sorted(arrivals)
    assert arrivals[0] > 0


def test_mean_rate_approximate():
    gen = RequestGenerator(rate=50.0, seed=2)
    requests = gen.generate(2000)
    measured = len(requests) / requests[-1].arrival
    assert measured == pytest.approx(50.0, rel=0.15)


def test_token_means_approximate():
    gen = RequestGenerator(rate=1.0, mean_prompt_tokens=256, mean_decode_tokens=16, seed=3)
    requests = gen.generate(3000)
    assert np.mean([r.prompt_tokens for r in requests]) == pytest.approx(257, rel=0.1)
    assert np.mean([r.decode_tokens for r in requests]) == pytest.approx(17, rel=0.1)


def test_deterministic_per_seed():
    a = RequestGenerator(rate=5.0, seed=7).generate(10)
    b = RequestGenerator(rate=5.0, seed=7).generate(10)
    assert a == b


def test_validation():
    with pytest.raises(ValueError):
        RequestGenerator(rate=0)
    with pytest.raises(ValueError):
        RequestGenerator(rate=1, mean_prompt_tokens=0)
    gen = RequestGenerator(rate=1)
    with pytest.raises(ValueError):
        gen.generate(0)
    with pytest.raises(ValueError):
        Request(request_id=0, arrival=-1.0, prompt_tokens=1, decode_tokens=1)
    with pytest.raises(ValueError):
        Request(request_id=0, arrival=0.0, prompt_tokens=0, decode_tokens=1)
