"""Request generation."""

import numpy as np
import pytest

from repro.serving.workload import Request, RequestGenerator


def test_arrivals_sorted_and_positive():
    gen = RequestGenerator(rate=10.0, seed=1)
    requests = gen.generate(100)
    arrivals = [r.arrival for r in requests]
    assert arrivals == sorted(arrivals)
    assert arrivals[0] > 0


def test_mean_rate_approximate():
    gen = RequestGenerator(rate=50.0, seed=2)
    requests = gen.generate(2000)
    measured = len(requests) / requests[-1].arrival
    assert measured == pytest.approx(50.0, rel=0.15)


def test_token_means_approximate():
    # The generator realizes the configured means exactly (prompts on
    # {1, ...}, decodes on {0, ...}) -- not mean+1 as the earlier
    # parameterization did.
    gen = RequestGenerator(rate=1.0, mean_prompt_tokens=256, mean_decode_tokens=16, seed=3)
    requests = gen.generate(3000)
    assert np.mean([r.prompt_tokens for r in requests]) == pytest.approx(256, rel=0.1)
    assert np.mean([r.decode_tokens for r in requests]) == pytest.approx(16, rel=0.1)


def test_zero_decode_mean_is_valid():
    # mean_decode_tokens=0 must be accepted and produce all
    # prefill-only requests (decode_tokens == 0 is a legal request).
    gen = RequestGenerator(rate=1.0, mean_prompt_tokens=8, mean_decode_tokens=0, seed=5)
    requests = gen.generate(500)
    assert all(r.decode_tokens == 0 for r in requests)
    assert all(r.prompt_tokens >= 1 for r in requests)


def test_deterministic_per_seed():
    a = RequestGenerator(rate=5.0, seed=7).generate(10)
    b = RequestGenerator(rate=5.0, seed=7).generate(10)
    assert a == b


def test_batched_arrivals_are_lockstep():
    gen = RequestGenerator(rate=10.0, arrival="batched", batch_size=4, seed=0)
    requests = gen.generate(12)
    arrivals = [r.arrival for r in requests]
    # Groups of batch_size share one arrival, spaced batch_size/rate.
    assert arrivals[0] == arrivals[3] == pytest.approx(0.4)
    assert arrivals[4] == arrivals[7] == pytest.approx(0.8)
    assert arrivals[8] == pytest.approx(1.2)


def test_onoff_arrivals_keep_mean_rate():
    gen = RequestGenerator(rate=50.0, arrival="onoff", seed=4)
    requests = gen.generate(4000)
    measured = len(requests) / requests[-1].arrival
    assert measured == pytest.approx(50.0, rel=0.2)
    # Bursty: the largest inter-arrival gap dwarfs the mean gap.
    arrivals = np.array([r.arrival for r in requests])
    assert np.diff(arrivals).max() > 20 * (1.0 / 50.0)


def test_arrival_process_validation():
    with pytest.raises(ValueError):
        RequestGenerator(rate=1.0, arrival="weird")
    with pytest.raises(ValueError):
        RequestGenerator(rate=1.0, batch_size=0)


def test_validation():
    with pytest.raises(ValueError):
        RequestGenerator(rate=0)
    with pytest.raises(ValueError):
        RequestGenerator(rate=1, mean_prompt_tokens=0)
    with pytest.raises(ValueError):
        RequestGenerator(rate=1, mean_decode_tokens=-1)
    gen = RequestGenerator(rate=1)
    with pytest.raises(ValueError):
        gen.generate(0)
    with pytest.raises(ValueError):
        Request(request_id=0, arrival=-1.0, prompt_tokens=1, decode_tokens=1)
    with pytest.raises(ValueError):
        Request(request_id=0, arrival=0.0, prompt_tokens=0, decode_tokens=1)
