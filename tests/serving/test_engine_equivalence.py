"""Equivalence suite: the fused ``max_batch=1`` engine IS the seed FIFO.

The refactor's contract is that :class:`ServingSimulator` (now a thin
``max_batch=1`` configuration of :class:`BatchingEngine`) produces
*bit-identical* results to the seed loop preserved in
:mod:`repro.serving.reference` -- same completions in the same order,
same float starts/finishes, same horizon, busy seconds, and rejects.
Not approximately: the surcharge terms are exact float no-ops at 0.0
and the event structure is unchanged, so ``==`` must hold.
"""

import pytest

from repro.core.strategies import Scheme
from repro.serving.engine import BatchConfig, BatchingEngine, PhaseCostModel
from repro.serving.reference import ReferenceFIFOSimulator
from repro.serving.simulator import CostModel, ServingSimulator
from repro.serving.workload import RequestGenerator

SCHEME = Scheme.MD_LB
COST = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)


def assert_bit_identical(result, reference):
    assert len(result.completed) == len(reference.completed)
    for got, want in zip(result.completed, reference.completed):
        assert got.request.request_id == want.request.request_id
        assert got.start == want.start  # exact float equality
        assert got.finish == want.finish
    assert result.rejected == reference.rejected
    assert result.horizon == reference.horizon
    assert result.busy_seconds == reference.busy_seconds
    assert result.latency_percentile(99) == reference.latency_percentile(99)


@pytest.mark.parametrize("arrival", ["poisson", "batched", "onoff"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_serving_simulator_matches_reference(arrival, seed):
    gen = RequestGenerator(
        rate=2e6,  # saturating: exercises queueing and busy chains
        mean_prompt_tokens=24,
        mean_decode_tokens=6,
        seed=seed,
        arrival=arrival,
    )
    requests = gen.generate(300)
    result = ServingSimulator(COST, SCHEME).run(requests)
    reference = ReferenceFIFOSimulator(COST, SCHEME).run(requests)
    assert_bit_identical(result, reference)
    assert result.engine == "fifo"


def test_fused_engine_matches_reference_directly():
    gen = RequestGenerator(rate=1e6, mean_prompt_tokens=16, mean_decode_tokens=8, seed=7)
    requests = gen.generate(200)
    fused = BatchingEngine(
        PhaseCostModel.from_cost_model(COST), SCHEME, BatchConfig(max_batch=1)
    ).run(requests)
    reference = ReferenceFIFOSimulator(COST, SCHEME).run(requests)
    assert_bit_identical(fused, reference)


def test_queue_limit_rejection_matches_reference():
    gen = RequestGenerator(rate=1e8, mean_prompt_tokens=64, mean_decode_tokens=16, seed=4)
    requests = gen.generate(400)
    result = ServingSimulator(COST, SCHEME, queue_limit=8).run(requests)
    reference = ReferenceFIFOSimulator(COST, SCHEME, queue_limit=8).run(requests)
    assert reference.rejected > 0  # the limit actually bites
    assert_bit_identical(result, reference)


def test_zero_decode_requests_match_reference():
    gen = RequestGenerator(
        rate=5e6, mean_prompt_tokens=32, mean_decode_tokens=0, seed=5
    )
    requests = gen.generate(150)
    result = ServingSimulator(COST, SCHEME).run(requests)
    reference = ReferenceFIFOSimulator(COST, SCHEME).run(requests)
    assert_bit_identical(result, reference)


def test_fused_ttft_is_bookkeeping_only():
    # The fused path records TTFT arithmetically; it must never perturb
    # the event timeline, and it lands at start + prefill time.
    gen = RequestGenerator(rate=1e5, mean_prompt_tokens=16, mean_decode_tokens=8, seed=6)
    requests = gen.generate(50)
    result = ServingSimulator(COST, SCHEME).run(requests)
    for c in result.completed:
        expected = c.start + COST.encode_seconds_per_token * c.request.prompt_tokens
        assert c.first_token == pytest.approx(expected)
        assert c.start <= c.first_token <= c.finish
