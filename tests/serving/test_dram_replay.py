"""`dram_replay_trace` / `dram_replay_trace_arrays` coverage:
validation, determinism, region resume, and array/object bit-identity."""

import numpy as np
import pytest

from repro.core.strategies import Scheme
from repro.dram.config import LPDDR5X_8533
from repro.dram.request import RequestKind
from repro.serving.simulator import (
    CostModel,
    ServingResult,
    ServingSimulator,
    dram_replay_trace,
    dram_replay_trace_arrays,
)
from repro.serving.workload import Request


@pytest.fixture(scope="module")
def result():
    cost = CostModel(encode_seconds_per_token=1e-4, decode_seconds_per_token=1e-3)
    requests = [
        Request(request_id=i, arrival=0.002 * (i + 1), prompt_tokens=20, decode_tokens=5)
        for i in range(8)
    ]
    return ServingSimulator(cost, Scheme.MD_LB).run(requests)


REPLAY_KWARGS = dict(bytes_per_token=256, max_blocks_per_request=64, seed=3)


def test_parameter_validation():
    empty = ServingResult(scheme=Scheme.MD_LB)
    for bad in (
        dict(bytes_per_token=0),
        dict(max_blocks_per_request=0),
        dict(region_bytes=0),
        dict(n_regions=0),
    ):
        with pytest.raises(ValueError):
            dram_replay_trace_arrays(empty, **bad)
        with pytest.raises(ValueError):
            dram_replay_trace(empty, **bad)


def test_empty_result_yields_empty_columns():
    empty = ServingResult(scheme=Scheme.MD_LB)
    addrs, arrive, flags = dram_replay_trace_arrays(empty)
    assert addrs.shape == arrive.shape == flags.shape == (0,)
    assert dram_replay_trace(empty) == []


def test_deterministic_under_fixed_seed(result):
    a = dram_replay_trace_arrays(result, **REPLAY_KWARGS)
    b = dram_replay_trace_arrays(result, **REPLAY_KWARGS)
    for col_a, col_b in zip(a, b):
        assert (col_a == col_b).all()
    c = dram_replay_trace_arrays(result, bytes_per_token=256,
                                 max_blocks_per_request=64, seed=4)
    assert not (a[0] == c[0]).all()


def test_region_resume(result):
    """With a single region every burst resumes where the previous one
    left off: the block stream is one contiguous run (modulo the
    region) across all requests."""
    addrs, _, _ = dram_replay_trace_arrays(
        result, n_regions=1, region_bytes=1 << 22, **REPLAY_KWARGS
    )
    step = LPDDR5X_8533.organization.access_bytes
    region_blocks = (1 << 22) // step
    blocks = addrs // step
    n = len(blocks)
    assert n == 8 * 64  # 25 tokens * 256 B = 6400 B -> capped at 64 blocks
    expected = np.arange(n, dtype=np.int64) % region_blocks
    assert (blocks == expected).all()


def test_arrays_bit_identical_to_object_form(result):
    """The object-list form is a thin adapter over the array form:
    same addresses, same arrivals, same kinds, in the same order."""
    addrs, arrive, flags = dram_replay_trace_arrays(result, **REPLAY_KWARGS)
    objects = dram_replay_trace(result, **REPLAY_KWARGS)
    assert len(objects) == len(addrs)
    assert [r.addr for r in objects] == addrs.tolist()
    assert [r.arrive_cycle for r in objects] == arrive.tolist()
    assert all(r.kind is RequestKind.READ for r in objects)
    assert not flags.any()


def test_request_ids_map_bursts(result):
    addrs, arrive, flags, rids = dram_replay_trace_arrays(
        result, return_request_ids=True, **REPLAY_KWARGS
    )
    assert rids.shape == addrs.shape
    assert set(rids.tolist()) == {c.request.request_id for c in result.completed}
    # Each request's burst shares one arrival cycle.
    for rid in np.unique(rids):
        assert len(np.unique(arrive[rids == rid])) == 1
