"""Serving simulator: queueing behaviour and scheme comparison."""

import pytest

from repro.core.strategies import Scheme
from repro.serving.simulator import CostModel, ServingSimulator
from repro.serving.workload import Request, RequestGenerator


@pytest.fixture
def cheap_model():
    return CostModel(encode_seconds_per_token=1e-4, decode_seconds_per_token=1e-3)


def req(i, arrival, prompt=100, decode=10):
    return Request(request_id=i, arrival=arrival, prompt_tokens=prompt, decode_tokens=decode)


def test_single_request_latency_is_service_time(cheap_model):
    sim = ServingSimulator(cheap_model, Scheme.MD_LB)
    service = cheap_model.service_time(req(0, 1.0))
    result = sim.run([req(0, 1.0)])
    assert result.n_completed == 1
    assert result.completed[0].latency == pytest.approx(service)
    assert result.completed[0].queue_delay == 0.0


def test_fifo_queueing(cheap_model):
    """Two simultaneous arrivals: the second waits for the first."""
    sim = ServingSimulator(cheap_model, Scheme.MD_LB)
    service = cheap_model.service_time(req(0, 1.0))
    result = sim.run([req(0, 1.0), req(1, 1.0)])
    by_id = {c.request.request_id: c for c in result.completed}
    assert by_id[1].queue_delay == pytest.approx(service)
    assert by_id[1].latency == pytest.approx(2 * service)


def test_utilization_and_throughput(cheap_model):
    sim = ServingSimulator(cheap_model, Scheme.MD_LB)
    requests = [req(i, 0.001 * (i + 1)) for i in range(20)]
    result = sim.run(requests)
    assert result.n_completed == 20
    assert 0 < result.utilization <= 1.0
    assert result.throughput_rps > 0


def test_queue_limit_rejects(cheap_model):
    sim = ServingSimulator(cheap_model, Scheme.MD_LB, queue_limit=2)
    requests = [req(i, 0.0001) for i in range(10)]
    result = sim.run(requests)
    assert result.rejected == 10 - 1 - 2  # one in service, two queued
    assert result.n_completed == 3


def test_latency_grows_with_load(cheap_model):
    """The hockey stick: near-saturation latency blows up."""
    from repro.cosim import CosimConfig, run_load_sweep

    service = cheap_model.service_time(req(0, 0, prompt=512, decode=32))
    capacity = 1.0 / service
    # planner=None runs the grid serving-only (open loop); queue_limit
    # 512 matches the historical standalone loop the deleted
    # repro.serving.load_sweep adapter preserved.
    _, runs = run_load_sweep(
        cheap_model, Scheme.MD_LB, None,
        [0.2 * capacity, 0.95 * capacity],
        n_requests=300,
        cosim_config=CosimConfig(queue_limit=512),
    )
    low, high = runs[0].closed_loop, runs[1].closed_loop
    assert high.mean_latency > 1.5 * low.mean_latency
    assert high.utilization > low.utilization


def test_percentiles_ordered(cheap_model):
    sim = ServingSimulator(cheap_model, Scheme.MD_LB)
    requests = RequestGenerator(rate=20.0, seed=0).generate(100)
    result = sim.run(requests)
    p50 = result.latency_percentile(50)
    p99 = result.latency_percentile(99)
    assert 0 < p50 <= p99


def test_validation(cheap_model):
    with pytest.raises(ValueError):
        ServingSimulator(cheap_model, Scheme.MD_LB, queue_limit=0)


def test_dram_replay_trace_carries_serving_arrivals(cheap_model):
    """The serving-to-DRAM replay hook: DRAM request arrivals come
    from serving-request start times and drive nonzero queueing at the
    memory level."""
    import dataclasses

    from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533
    from repro.dram.controller import MemoryController
    from repro.dram.reference import ReferenceMemoryController
    from repro.serving.simulator import dram_replay_trace

    sim = ServingSimulator(cheap_model, Scheme.MD_LB)
    requests = [req(i, 0.002 * (i + 1), prompt=20, decode=5) for i in range(6)]
    result = sim.run(requests)

    trace = dram_replay_trace(
        result, bytes_per_token=256, max_blocks_per_request=64, seed=1
    )
    assert trace, "replay produced no DRAM requests"
    clock = LPDDR5X_8533.timing.clock_hz
    starts = sorted(int(round(c.start * clock)) for c in result.completed)
    assert sorted({r.arrive_cycle for r in trace}) == sorted(set(starts))

    # The replayed stream drains on both controllers identically and
    # reports queueing (each serving burst lands at one instant).
    small = DRAMConfig(
        organization=DRAMOrganization(
            n_channels=2, n_ranks=1, n_bankgroups=2, banks_per_group=2,
            n_rows=4096, row_bytes=2048, access_bytes=64,
        ),
        timing=LPDDR5X_8533.timing,
    )
    fast_trace = dram_replay_trace(
        result, dram_config=small, bytes_per_token=256,
        max_blocks_per_request=64, seed=1,
    )
    ref_trace = dram_replay_trace(
        result, dram_config=small, bytes_per_token=256,
        max_blocks_per_request=64, seed=1,
    )
    fast_stats = MemoryController(small).simulate(fast_trace)
    ref_stats = ReferenceMemoryController(small).simulate(ref_trace)
    assert dataclasses.asdict(fast_stats) == dataclasses.asdict(ref_stats)
    assert fast_stats.queue_delay_max > 0
    assert sum(fast_stats.idle_channel_cycles.values()) > 0


def test_dram_replay_trace_validation(cheap_model):
    from repro.serving.simulator import ServingResult, dram_replay_trace

    empty = ServingResult(scheme=Scheme.MD_LB)
    assert dram_replay_trace(empty) == []
    with pytest.raises(ValueError):
        dram_replay_trace(empty, bytes_per_token=0)
    with pytest.raises(ValueError):
        dram_replay_trace(empty, region_bytes=0)


@pytest.mark.slow
def test_cost_model_from_runtime_ranks_schemes():
    """MD+LB sustains more load than GPU+PM on the same model."""
    from repro.workloads import flores_like

    sc = flores_like(batch=1)
    pm = CostModel.from_runtime(sc.model, Scheme.GPU_PM, profile=sc.profile,
                                ref_decode_steps=4)
    lb = CostModel.from_runtime(sc.model, Scheme.MD_LB, profile=sc.profile,
                                ref_decode_steps=4)
    request = req(0, 0.0, prompt=512, decode=32)
    assert lb.service_time(request) < pm.service_time(request)
