"""Continuous-batching engine behavior (the non-fused, stepped path).

Bit-identity of the fused ``max_batch=1`` path against the seed FIFO
loop lives in ``test_engine_equivalence.py``; these tests pin the
batching semantics: phase pricing, admission policy, TTFT/queue-delay
accounting, and the corner cases (zero-decode requests, empty batches,
bursty arrival processes run end to end through the engine).
"""

import pytest

from repro.core.strategies import Scheme
from repro.serving.engine import (
    BatchConfig,
    BatchingEngine,
    PhaseCostModel,
    RuntimePhaseCostModel,
    _quantize_pow2,
)
from repro.serving.simulator import CostModel
from repro.serving.workload import Request, RequestGenerator, RequestPhase

SCHEME = Scheme.MD_LB


def req(rid, arrival, prompt=4, decode=3):
    return Request(
        request_id=rid, arrival=arrival, prompt_tokens=prompt, decode_tokens=decode
    )


def engine(max_batch=4, mf=1.0, prefill=1.0, decode=10.0, **kwargs):
    cost = PhaseCostModel(
        prefill_seconds_per_token=prefill,
        decode_seconds_per_token=decode,
        decode_marginal_fraction=mf,
    )
    return BatchingEngine(cost, SCHEME, BatchConfig(max_batch=max_batch, **kwargs))


# -- PhaseCostModel ---------------------------------------------------------


def test_phase_cost_model_decode_step_formula():
    cost = PhaseCostModel(1.0, 10.0, decode_marginal_fraction=0.25)
    # (1 - mf) fixed + mf * batch marginal.
    assert cost.decode_step_seconds(1) == pytest.approx(10.0)
    assert cost.decode_step_seconds(4) == pytest.approx(10.0 * (0.75 + 0.25 * 4))
    assert cost.decode_step_seconds(0) == 0.0


def test_phase_cost_model_mf1_recovers_serial_decodes():
    cost = PhaseCostModel(1.0, 10.0, decode_marginal_fraction=1.0)
    assert cost.decode_step_seconds(8) == pytest.approx(8 * cost.decode_step_seconds(1))


def test_phase_cost_model_request_seconds_matches_seed_expression():
    scalar = CostModel(encode_seconds_per_token=3e-9, decode_seconds_per_token=7e-8)
    phase = PhaseCostModel.from_cost_model(scalar)
    r = req(0, 0.0, prompt=137, decode=41)
    # Exact float equality: the fused engine path must reproduce the
    # seed FIFO's service times bit for bit.
    assert phase.request_seconds(r) == scalar.service_time(r)


def test_phase_cost_model_validation():
    with pytest.raises(ValueError):
        PhaseCostModel(-1.0, 1.0)
    with pytest.raises(ValueError):
        PhaseCostModel(1.0, 1.0, decode_marginal_fraction=1.5)


def test_batch_config_validation():
    with pytest.raises(ValueError):
        BatchConfig(max_batch=0)
    with pytest.raises(ValueError):
        BatchConfig(prefill_token_budget=0)
    with pytest.raises(ValueError):
        BatchConfig(priority="fifo")
    with pytest.raises(ValueError):
        BatchConfig(queue_limit=0)


def test_quantize_pow2():
    assert [_quantize_pow2(n) for n in (1, 2, 3, 5, 8, 9)] == [1, 2, 4, 8, 8, 16]


# -- stepped engine behavior ------------------------------------------------


def test_single_request_phase_timeline():
    # prefill 4 tokens @ 1 s/token, then 3 decode steps @ 10 s each.
    result = engine().run([req(0, arrival=2.0)])
    assert result.engine == "batching"
    assert result.n_completed == 1
    c = result.completed[0]
    assert c.start == pytest.approx(2.0)
    assert c.first_token == pytest.approx(2.0 + 4.0)  # TTFT = prefill step end
    assert c.finish == pytest.approx(2.0 + 4.0 + 3 * 10.0)
    assert c.ttft == pytest.approx(4.0)
    assert c.tpot == pytest.approx(10.0)
    assert result.n_steps == 4  # 1 prefill step + 3 decode steps
    assert c.request.lifecycle.phase is RequestPhase.FINISHED


def test_cobatched_decode_amortizes_with_mf0():
    # mf=0: a decode step costs one weight stream however many
    # requests share it, so overlapping requests decode nearly for
    # free relative to the serial mf=1 pricing.
    requests = lambda: [req(0, 1.0), req(1, 1.0)]
    shared = engine(mf=0.0).run(requests())
    serial = engine(mf=1.0).run(requests())
    assert shared.n_completed == serial.n_completed == 2
    # Both engines co-batch (max recorded decode batch is 2)...
    assert max(
        b for c in shared.completed for b in c.decode_step_batches
    ) == 2
    # ...but only mf=0 makes the shared step cheaper than serial.
    assert max(c.finish for c in shared.completed) < max(
        c.finish for c in serial.completed
    )
    shared_steps = {t for c in shared.completed for t in c.decode_step_starts}
    # Co-batched steps are shared events, not per-request copies.
    assert len(shared_steps) < sum(
        len(c.decode_step_starts) for c in shared.completed
    )


def test_zero_decode_completes_at_prefill_end():
    result = engine().run([req(0, 0.0, prompt=6, decode=0)])
    c = result.completed[0]
    assert c.finish == c.first_token == pytest.approx(6.0)
    assert c.tpot == 0.0
    assert result.n_steps == 1


def test_all_zero_decode_batch():
    requests = [req(i, 0.5, prompt=2, decode=0) for i in range(4)]
    result = engine().run(requests)
    assert result.n_completed == 4
    assert all(c.finish == c.first_token for c in result.completed)


def test_decode_priority_defers_admission():
    # priority="decode": request 1 arrives while request 0 decodes and
    # must wait for the full drain before its prefill is admitted.
    result = engine(priority="decode").run([req(0, 0.0), req(1, 1.0)])
    by_id = {c.request.request_id: c for c in result.completed}
    drain0 = 4.0 + 3 * 10.0
    assert by_id[0].finish == pytest.approx(drain0)
    assert by_id[1].start == pytest.approx(drain0)
    # prefill priority admits it into the next step instead.
    result = engine(priority="prefill").run([req(0, 0.0), req(1, 1.0)])
    by_id = {c.request.request_id: c for c in result.completed}
    assert by_id[1].start == pytest.approx(4.0)  # right after request 0's prefill step


def test_max_batch_bounds_admission():
    # Six co-arriving requests, max_batch=2: no step ever runs more
    # than two requests, so admission is spread over time.
    result = engine(max_batch=2).run(
        [req(i, 0.0, prompt=1, decode=4) for i in range(6)]
    )
    assert result.n_completed == 6
    assert max(b for c in result.completed for b in c.decode_step_batches) <= 2
    assert len({c.start for c in result.completed}) > 1


def test_prefill_token_budget_chunks_admission():
    # Budget of 5 admits the first 4-token prompt and stops; the
    # second waits a step even though a slot is free.
    result = engine(prefill_token_budget=5).run(
        [req(0, 0.0, prompt=4), req(1, 0.0, prompt=4)]
    )
    by_id = {c.request.request_id: c for c in result.completed}
    assert by_id[0].start == pytest.approx(0.0)
    assert by_id[1].start > 0.0


def test_oversized_prompt_admitted_alone_not_starved():
    result = engine(prefill_token_budget=2).run([req(0, 0.0, prompt=100, decode=0)])
    assert result.n_completed == 1


def test_queue_limit_rejects():
    result = engine(max_batch=2, queue_limit=1).run(
        [req(i, 0.0, prompt=1, decode=5) for i in range(8)]
    )
    assert result.rejected > 0
    assert result.n_completed + result.rejected == 8


def test_percentiles_populated():
    gen = RequestGenerator(rate=0.01, mean_prompt_tokens=8, mean_decode_tokens=4, seed=3)
    result = engine().run(gen.generate(50))
    assert result.ttft_percentile(99) > 0
    assert result.queue_delay_percentile(99) >= 0
    assert result.tpot_percentile(50) > 0
    assert result.mean_ttft > 0


@pytest.mark.parametrize("arrival", ["batched", "onoff"])
def test_bursty_arrivals_complete_through_engine(arrival):
    # Satellite: the bursty arrival processes keep the poisson mean
    # offered rate, and every generated request runs end to end
    # through the stepped engine (none lost, none duplicated) at a
    # load the server can absorb.
    rate = 0.001
    gen = RequestGenerator(
        rate=rate, mean_prompt_tokens=4, mean_decode_tokens=2, seed=9, arrival=arrival
    )
    requests = gen.generate(2000)
    measured = len(requests) / requests[-1].arrival
    assert measured == pytest.approx(rate, rel=0.25)
    result = engine().run(requests)
    assert result.n_completed == 2000
    assert result.rejected == 0
    ids = sorted(c.request.request_id for c in result.completed)
    assert ids == list(range(2000))


def test_surcharges_stretch_phases():
    base = engine().run([req(0, 0.0)])
    cost = PhaseCostModel(1.0, 10.0)
    charged = BatchingEngine(
        cost,
        SCHEME,
        BatchConfig(max_batch=4),
        extra_prefill_seconds_per_token=0.5,
        extra_decode_seconds_per_token=2.0,
    ).run([req(0, 0.0)])
    b, c = base.completed[0], charged.completed[0]
    assert c.ttft == pytest.approx(b.ttft + 0.5 * 4)
    assert c.finish == pytest.approx(b.finish + 0.5 * 4 + 2.0 * 3)


# -- RuntimePhaseCostModel --------------------------------------------------


@pytest.mark.slow
def test_runtime_phase_cost_model_calibrates_and_memoizes():
    from repro.moe import switch_large_tiny

    cost = RuntimePhaseCostModel(switch_large_tiny(), SCHEME)
    a = cost.prefill_seconds(100)
    assert a > 0
    # Same pow2 bucket (128) -> one calibration, linear inside it.
    assert cost.prefill_seconds(100) == pytest.approx(a)
    assert len(cost._prefill_cache) == 1
    assert cost.prefill_seconds(200) > a
    assert len(cost._prefill_cache) == 2
    one = cost.decode_step_seconds(1)
    eight = cost.decode_step_seconds(8)
    assert one > 0
    # Amortization emerges from the runtime: a batch-8 step is cheaper
    # than eight serial steps.
    assert eight < 8 * one
    r = req(0, 0.0, prompt=100, decode=4)
    assert cost.request_seconds(r) == pytest.approx(
        cost.prefill_seconds(100) + 4 * one
    )
    with pytest.raises(ValueError):
        RuntimePhaseCostModel(switch_large_tiny(), SCHEME, calib_decode_steps=0)
