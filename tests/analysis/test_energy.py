"""Energy model extension."""

import numpy as np
import pytest

from repro.analysis.energy import EnergyModel
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128
from repro.moe.zoo import t5_large_dense
from tests.conftest import make_counts


@pytest.fixture(scope="module")
def model():
    return EnergyModel(nllb_moe_128())


@pytest.fixture
def cold_counts():
    return make_counts(128, {e: 3 for e in range(40)})


def test_amove_saves_link_energy_on_cold_layers(model, cold_counts):
    """The headline claim, in joules: cold experts cost far less link
    energy under AMove than PMove."""
    pm = model.layer_energy(Scheme.GPU_PM, cold_counts)
    am = model.layer_energy(Scheme.MD_AM, cold_counts)
    assert am.link_j < pm.link_j / 50
    assert am.total_j < pm.total_j


def test_ideal_has_no_link_energy(model, cold_counts):
    ideal = model.layer_energy(Scheme.IDEAL, cold_counts)
    assert ideal.link_j == 0.0
    assert ideal.total_j > 0


def test_md_lb_between_extremes(model):
    counts = make_counts(128, {0: 1500, 1: 900, **{e: 3 for e in range(10, 40)}})
    pm = model.layer_energy(Scheme.GPU_PM, counts)
    am = model.layer_energy(Scheme.MD_AM, counts)
    lb = model.layer_energy(Scheme.MD_LB, counts)
    assert min(am.total_j, pm.total_j) * 0.5 < lb.total_j < pm.total_j
    assert lb.link_j < pm.link_j


def test_cpu_am_memory_energy_exceeds_md_am(model, cold_counts):
    cpu = model.layer_energy(Scheme.CPU_AM, cold_counts)
    md = model.layer_energy(Scheme.MD_AM, cold_counts)
    assert cpu.memory_j > md.memory_j
    assert cpu.compute_j > md.compute_j


def test_energy_scales_with_active_experts(model):
    few = model.layer_energy(Scheme.GPU_PM, make_counts(128, {0: 3, 1: 3}))
    many = model.layer_energy(
        Scheme.GPU_PM, make_counts(128, {e: 3 for e in range(50)})
    )
    assert many.total_j > 10 * few.total_j


def test_compare_covers_all_schemes(model, cold_counts):
    table = model.compare(cold_counts)
    assert set(table) == {
        Scheme.IDEAL, Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB, Scheme.CPU_AM
    }
    for breakdown in table.values():
        assert breakdown.total_j == pytest.approx(
            breakdown.link_j + breakdown.memory_j + breakdown.compute_j
        )


def test_validation(model):
    with pytest.raises(ValueError):
        EnergyModel(t5_large_dense())
    with pytest.raises(ValueError):
        model.layer_energy(Scheme.IDEAL, np.zeros(4))
    with pytest.raises(ValueError):
        model.layer_energy(Scheme.MULTI_GPU, np.zeros(128))
