"""Seed-sweep statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import bootstrap_ci, seed_sweep


def test_sweep_basic():
    result = seed_sweep(lambda seed: float(seed % 3), seeds=range(9))
    assert result.n == 9
    assert result.mean == pytest.approx(1.0)
    assert result.ci_low <= result.mean <= result.ci_high


def test_constant_metric_zero_spread():
    result = seed_sweep(lambda seed: 5.0, seeds=range(5))
    assert result.std == 0.0
    assert result.ci_low == result.ci_high == 5.0


def test_single_value_ci_degenerate():
    lo, hi = bootstrap_ci([3.0])
    assert lo == hi == 3.0


def test_format():
    result = seed_sweep(lambda s: 2.0, seeds=range(3))
    text = result.format()
    assert "2.00 +/- 0.00" in text and "n=3" in text


def test_validation():
    with pytest.raises(ValueError):
        seed_sweep(lambda s: 0.0, seeds=[])
    with pytest.raises(ValueError):
        bootstrap_ci([])
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], confidence=1.5)


@settings(max_examples=20)
@given(
    values=st.lists(st.floats(-100, 100), min_size=2, max_size=30),
)
def test_ci_contains_plausible_means(values):
    lo, hi = bootstrap_ci(values, seed=1)
    assert lo <= hi
    assert min(values) - 1e-9 <= lo
    assert hi <= max(values) + 1e-9


def test_sweep_on_runtime_metric():
    """A realistic use: spread of the Fig. 6 headline over seeds."""
    from repro.core.runtime import InferenceConfig, MoNDERuntime
    from repro.core.strategies import Scheme
    from repro.workloads import flores_like

    sc = flores_like(batch=1)

    def metric(seed: int) -> float:
        cfg = InferenceConfig(
            model=sc.model, batch=1, decode_steps=2, profile=sc.profile, seed=seed
        )
        return MoNDERuntime(cfg).speedup(Scheme.MD_LB, Scheme.GPU_PM, "encoder")

    result = seed_sweep(metric, seeds=range(3))
    assert result.mean > 2.0
    assert result.ci_low > 1.0
