"""Fig. 2 characterization helpers."""

import pytest

from repro.analysis.characterize import (
    compute_vs_transfer,
    dmodel_scaling,
    param_scaling,
)
from repro.moe import switch_large_128


def test_param_scaling_fig2a():
    rows = param_scaling(switch_large_128(), [0, 64, 128, 256, 512])
    assert rows[0].expert_gb == 0.0  # dense
    # Linear growth in E.
    assert rows[2].expert_gb == pytest.approx(2 * rows[1].expert_gb)
    assert rows[4].expert_gb == pytest.approx(8 * rows[1].expert_gb)
    # Switch-Large-128 exceeds a 4x V100 node (128 GB), as in Fig. 2(a).
    assert rows[2].total_gb > 50


def test_param_scaling_non_expert_stable():
    rows = param_scaling(switch_large_128(), [64, 512])
    assert rows[0].non_expert_gb == pytest.approx(rows[1].non_expert_gb, rel=0.05)


def test_dmodel_scaling_fig2b():
    rows = dmodel_scaling([768, 1024, 1536, 2048, 2560, 4096])
    # Expert grows quadratically, activations linearly -> ratio grows.
    ratios = [r.ratio for r in rows]
    for a, b in zip(ratios, ratios[1:]):
        assert b > a
    # At d=4096 a single expert is ~5x the 6144-token activation
    # (Fig. 2(b)'s right-axis ratio reaches ~6).
    assert rows[-1].ratio > 4
    assert rows[0].ratio < 1.5


def test_dmodel_scaling_values():
    rows = dmodel_scaling([1024], n_tokens=6144)
    assert rows[0].expert_gb == pytest.approx(2 * 1024 * 4096 * 2 / 1e9)
    assert rows[0].activation_gb == pytest.approx(6144 * 1024 * 2 / 1e9)


def test_compute_vs_transfer_fig2c_shape():
    """Transfer dwarfs compute for few tokens (paper: up to ~30x for a
    single routed token) and the gap narrows with more tokens."""
    rows = compute_vs_transfer([1, 4, 16, 64, 256, 1024, 2048], d_model=1024)
    assert rows[0].transfer_dominates
    assert rows[0].transfer_to_compute > 10
    gaps = [r.transfer_to_compute for r in rows]
    assert gaps[-1] < gaps[0]
    # Achieved TFLOPS grows with tokens (Fig. 2(c) right axis).
    tflops = [r.achieved_tflops for r in rows]
    assert tflops[-1] > tflops[0]


def test_compute_vs_transfer_dmodel_2048():
    rows = compute_vs_transfer([1], d_model=2048)
    # 67 MB expert over 25.6 GB/s ~ 2.6 ms.
    assert rows[0].transfer_ms == pytest.approx(2.6, abs=0.4)
