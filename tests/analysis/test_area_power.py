"""Table 3: area and power of the MoNDE NDP core."""

import pytest

from repro.analysis.area_power import (
    BASE_MEMORY_POWER_W,
    TABLE3_REFERENCE,
    AreaPowerModel,
)
from repro.hw.specs import MONDE_DEVICE, NDPCoreSpec


@pytest.fixture(scope="module")
def model():
    return AreaPowerModel()


def test_components_match_table3(model):
    by_name = {c.name: c for c in model.components()}
    for name, (area, power) in TABLE3_REFERENCE.items():
        assert by_name[name].area_mm2 == pytest.approx(area, rel=0.01), name
        assert by_name[name].power_w == pytest.approx(power, rel=0.01), name


def test_total_area_is_3mm2(model):
    """Paper: 'adds 3.0 mm^2 of area overhead'."""
    assert model.total_area_mm2 == pytest.approx(3.0, abs=0.1)


def test_dram_equivalent_capacity(model):
    """'corresponds to approximately 0.9 Gb DRAM cells'."""
    assert model.dram_cell_equivalent_gbit == pytest.approx(0.9, abs=0.05)


def test_power_overhead_is_1_6_percent(model):
    """'our NDP unit incurs only 1.6% of power overhead'."""
    assert model.power_overhead_fraction() == pytest.approx(0.016, abs=0.002)
    assert BASE_MEMORY_POWER_W == pytest.approx(114.2)


def test_scaling_with_arrays():
    """Doubling the MAC arrays doubles PE area/power but not buffers."""
    base = AreaPowerModel(MONDE_DEVICE.ndp)
    import dataclasses

    doubled = AreaPowerModel(
        dataclasses.replace(MONDE_DEVICE.ndp, n_arrays=128)
    )
    b = {c.name: c for c in base.components()}
    d = {c.name: c for c in doubled.components()}
    assert d["systolic_pe"].area_mm2 == pytest.approx(2 * b["systolic_pe"].area_mm2)
    assert d["scratchpad"].area_mm2 == pytest.approx(b["scratchpad"].area_mm2)


def test_table_rows(model):
    rows = model.table()
    assert len(rows) == 4
    assert {r[0] for r in rows} == set(TABLE3_REFERENCE)


def test_power_overhead_validation(model):
    with pytest.raises(ValueError):
        model.power_overhead_fraction(base_power_w=0)


def test_default_spec_is_monde():
    assert AreaPowerModel().spec == MONDE_DEVICE.ndp
    custom = NDPCoreSpec(n_arrays=8)
    assert AreaPowerModel(custom).spec.n_arrays == 8
