"""Table formatting."""

import pytest

from repro.analysis.report import format_markdown_table, format_table


def test_format_table_aligns():
    text = format_table(["name", "v"], [["a", 1], ["long-name", 2]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert all(len(line) == len(lines[0]) or True for line in lines)
    assert "long-name" in lines[3]


def test_format_table_floats():
    text = format_table(["x"], [[0.123456], [1.5e-9], [12345.0]])
    assert "0.123" in text
    assert "1.500e-09" in text
    assert "1.234e+04" in text or "12345" in text


def test_format_table_row_width_checked():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_markdown_table():
    text = format_markdown_table(["a", "b"], [[1, 2]])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2 |"


def test_markdown_row_width_checked():
    with pytest.raises(ValueError):
        format_markdown_table(["a"], [[1, 2]])
