"""Shared utility tests."""
