"""Atomic/durable write discipline shared by every artifact writer."""

from __future__ import annotations

import json
import os

import pytest

from repro.util.atomic_io import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    durable_append,
    replace_into_place,
    tmp_path_for,
)


def test_tmp_path_is_pid_suffixed_sibling(tmp_path):
    target = tmp_path / "deep" / "artifact.json"
    tmp = tmp_path_for(target)
    assert tmp.parent == target.parent
    assert tmp.name == f"artifact.json.{os.getpid()}.tmp"


def test_atomic_write_bytes_roundtrip_and_no_stragglers(tmp_path):
    path = tmp_path / "a.bin"
    atomic_write_bytes(path, b"\x00\x01payload")
    assert path.read_bytes() == b"\x00\x01payload"
    atomic_write_bytes(path, b"second")
    assert path.read_bytes() == b"second"
    assert list(tmp_path.iterdir()) == [path]


def test_atomic_write_text_and_json(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_json(path, {"b": 1, "a": [1.5, 2.0]})
    # Same bytes the historical open()+json.dump+newline writers made.
    assert path.read_text() == json.dumps({"b": 1, "a": [1.5, 2.0]}, indent=2) + "\n"
    atomic_write_text(tmp_path / "t.txt", "line\n")
    assert (tmp_path / "t.txt").read_text() == "line\n"


def test_failed_write_preserves_previous_file(tmp_path):
    """The whole point: a writer that dies mid-payload leaves the old
    artifact intact and no tmp straggler."""
    path = tmp_path / "a.json"
    atomic_write_json(path, {"generation": 1})
    with pytest.raises(TypeError):
        # json can't serialize this object: the write dies before the
        # replace, so generation 1 must survive.
        atomic_write_json(path, {"generation": object()})
    assert json.loads(path.read_text()) == {"generation": 1}
    assert list(tmp_path.iterdir()) == [path]


def test_replace_into_place_is_atomic_promotion(tmp_path):
    target = tmp_path / "artifact"
    target.write_bytes(b"old")
    staged = tmp_path_for(target)
    staged.write_bytes(b"new")
    replace_into_place(staged, target)
    assert target.read_bytes() == b"new"
    assert not staged.exists()


def test_durable_append_accumulates_records(tmp_path):
    path = tmp_path / "log.jsonl"
    with open(path, "wb") as fh:
        durable_append(fh, b'{"n": 1}\n')
        # Durable the moment the call returns: a concurrent reader
        # (or a post-crash resume) already sees the full record.
        assert path.read_bytes() == b'{"n": 1}\n'
        durable_append(fh, b'{"n": 2}\n')
    assert path.read_text().splitlines() == ['{"n": 1}', '{"n": 2}']
