"""Sweep checkpoint/resume: durability, identity, isolation.

The fault-tolerance contract of :func:`repro.cosim.run_load_sweep`:
an interrupted sweep resumed from its ``*.sweep.ckpt`` sidecar must
produce output **bit-identical** to the uninterrupted run, a stale or
mismatched checkpoint must be rejected rather than spliced in, a torn
final line must be tolerated, and one failing grid point must not take
the sweep down with it.
"""

from __future__ import annotations

import json

import pytest

from repro.core.strategies import Scheme
from repro.cosim import (
    CosimConfig,
    ExpertReplayPlanner,
    SweepInterrupted,
    run_load_sweep,
    small_cosim_dram,
)
from repro.cosim.sweep import load_checkpoint
from repro.faults import interrupt_after
from repro.serving.simulator import CostModel

RATES = [2e4, 1e6, 4e6]


def make_inputs():
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    planner = ExpertReplayPlanner(
        n_experts=16, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, expert_bytes=1 << 18, seed=1,
    )
    return cost, planner


def sweep_kwargs(**overrides):
    kwargs = dict(
        n_requests=40,
        seed=1,
        mean_prompt_tokens=20,
        mean_decode_tokens=5,
        cosim_config=CosimConfig(max_iterations=8),
    )
    kwargs.update(overrides)
    return kwargs


def run(rates=RATES, **overrides):
    cost, planner = make_inputs()
    return run_load_sweep(
        cost, Scheme.MD_LB, planner, rates, **sweep_kwargs(**overrides)
    )


@pytest.fixture(scope="module")
def baseline():
    result, runs = run()
    return result


def test_interrupt_then_resume_bit_identical(tmp_path, baseline):
    ckpt = tmp_path / "sweep.ckpt"
    with pytest.raises(SweepInterrupted):
        run(checkpoint_path=ckpt, on_point=interrupt_after(1))
    assert ckpt.exists()
    resumed, runs = run(checkpoint_path=ckpt, resume=True)
    assert json.dumps(resumed.to_dict()) == json.dumps(baseline.to_dict())
    # The grid completed: the sidecar is gone, and restored points
    # carry no live CosimResult while rerun points do.
    assert not ckpt.exists()
    assert runs[0] is None
    assert runs[1] is not None and runs[2] is not None


def test_interrupt_after_every_point_still_identical(tmp_path, baseline):
    """Resume composes: interrupting after every single point and
    resuming N times ends at the same document."""
    ckpt = tmp_path / "sweep.ckpt"
    with pytest.raises(SweepInterrupted):
        run(checkpoint_path=ckpt, on_point=interrupt_after(1))
    with pytest.raises(SweepInterrupted):
        run(checkpoint_path=ckpt, resume=True, on_point=interrupt_after(1))
    resumed, _ = run(checkpoint_path=ckpt, resume=True)
    assert json.dumps(resumed.to_dict()) == json.dumps(baseline.to_dict())


def test_parallel_sweep_resume_identical(tmp_path, baseline):
    """Checkpointed points restore identically into a pooled sweep."""
    ckpt = tmp_path / "sweep.ckpt"
    with pytest.raises(SweepInterrupted):
        run(checkpoint_path=ckpt, on_point=interrupt_after(1))
    resumed, _ = run(checkpoint_path=ckpt, resume=True, workers=2)
    assert json.dumps(resumed.to_dict()) == json.dumps(baseline.to_dict())


def test_fingerprint_mismatch_rejected(tmp_path):
    ckpt = tmp_path / "sweep.ckpt"
    with pytest.raises(SweepInterrupted):
        run(checkpoint_path=ckpt, on_point=interrupt_after(1))
    # Same checkpoint, different seed: incomparable points.
    with pytest.raises(ValueError, match="fingerprint does not match"):
        run(checkpoint_path=ckpt, resume=True, seed=2)
    # Different grid is just as incomparable.
    with pytest.raises(ValueError, match="fingerprint does not match"):
        run(rates=[2e4, 1e6], checkpoint_path=ckpt, resume=True)


def test_torn_final_line_tolerated(tmp_path, baseline):
    """A crash mid-append tears only the last line (each line is
    fsynced whole); the torn point reruns and the output still
    matches."""
    ckpt = tmp_path / "sweep.ckpt"
    with pytest.raises(SweepInterrupted):
        run(checkpoint_path=ckpt, on_point=interrupt_after(2))
    data = ckpt.read_bytes()
    assert data.endswith(b"\n")
    ckpt.write_bytes(data[:-40])  # tear the second point's record
    resumed, runs = run(checkpoint_path=ckpt, resume=True)
    assert json.dumps(resumed.to_dict()) == json.dumps(baseline.to_dict())
    assert runs[1] is not None  # the torn point was rerun


def test_corrupt_mid_checkpoint_rejected(tmp_path):
    ckpt = tmp_path / "sweep.ckpt"
    with pytest.raises(SweepInterrupted):
        run(checkpoint_path=ckpt, on_point=interrupt_after(2))
    lines = ckpt.read_text().splitlines()
    assert len(lines) == 3  # header + 2 points
    lines[1] = lines[1][:-10]  # corrupt a NON-final line
    ckpt.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match="corrupt checkpoint line"):
        run(checkpoint_path=ckpt, resume=True)


def test_bad_checkpoint_documents_rejected(tmp_path):
    fingerprint_probe = tmp_path / "probe.ckpt"
    # Build a real header to mutate.
    with pytest.raises(SweepInterrupted):
        run(checkpoint_path=fingerprint_probe, on_point=interrupt_after(1))
    header = json.loads(fingerprint_probe.read_text().splitlines()[0])

    bad_version = tmp_path / "v.ckpt"
    bad_version.write_text(json.dumps({**header, "version": 99}) + "\n")
    with pytest.raises(ValueError, match="format version"):
        load_checkpoint(bad_version, header["fingerprint"])

    bad_kind = tmp_path / "k.ckpt"
    bad_kind.write_text(json.dumps({**header, "kind": "other"}) + "\n")
    with pytest.raises(ValueError, match="not a sweep checkpoint"):
        load_checkpoint(bad_kind, header["fingerprint"])

    empty = tmp_path / "e.ckpt"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_checkpoint(empty, header["fingerprint"])


def test_failed_point_is_isolated(tmp_path):
    """One grid point whose run raises becomes a ``failed`` point; the
    rest of the grid completes and the failure is checkpointed so
    resume does not retry it."""
    # rate=0 makes RequestGenerator raise -- a deterministic per-point
    # failure with no monkeypatching.
    rates = [0.0, 1e6, 4e6]
    result, runs = run(rates=rates)
    assert result.points[0].failed
    assert "rate must be positive" in result.points[0].error
    assert runs[0] is None
    assert not result.points[1].failed and not result.points[2].failed
    assert result.points[1].converged

    # Failed points ride checkpoints like any other point.
    ckpt = tmp_path / "sweep.ckpt"
    with pytest.raises(SweepInterrupted):
        run(rates=rates, checkpoint_path=ckpt, on_point=interrupt_after(2))
    resumed, resumed_runs = run(rates=rates, checkpoint_path=ckpt, resume=True)
    assert json.dumps(resumed.to_dict()) == json.dumps(result.to_dict())
    assert resumed_runs[0] is None and resumed_runs[1] is None


def test_failed_point_isolated_in_pool(tmp_path):
    rates = [0.0, 1e6, 4e6]
    serial, _ = run(rates=rates)
    pooled, _ = run(rates=rates, workers=2)
    assert json.dumps(pooled.to_dict()) == json.dumps(serial.to_dict())


def test_checkpoint_removed_on_clean_completion(tmp_path):
    ckpt = tmp_path / "sweep.ckpt"
    result, _ = run(rates=[2e4, 1e6], checkpoint_path=ckpt)
    assert len(result.points) == 2
    assert not ckpt.exists()


def test_real_sigterm_mid_sweep_recovers(tmp_path, baseline):
    """An actual SIGTERM (not the injected stand-in) delivered between
    points lands as SweepInterrupted, leaves a durable checkpoint, and
    resume reproduces the uninterrupted document bit-for-bit."""
    import os
    import signal

    ckpt = tmp_path / "sweep.ckpt"

    def send_sigterm(rate, point):
        os.kill(os.getpid(), signal.SIGTERM)

    with pytest.raises(SweepInterrupted, match="signal"):
        run(checkpoint_path=ckpt, on_point=send_sigterm)
    # The sweep's handler was removed on exit.
    assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL
    assert ckpt.exists()
    resumed, _ = run(checkpoint_path=ckpt, resume=True)
    assert json.dumps(resumed.to_dict()) == json.dumps(baseline.to_dict())
