"""Load-sweep runner: hockey stick, serialization, rendering."""

import json

import pytest

from repro.core.strategies import Scheme
from repro.cosim import (
    CosimConfig,
    ExpertReplayPlanner,
    SweepResult,
    format_sweep,
    run_load_sweep,
    small_cosim_dram,
)
from repro.serving.simulator import CostModel

RATES = [2e4, 1e6, 4e6]


@pytest.fixture(scope="module")
def sweep():
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    planner = ExpertReplayPlanner(
        n_experts=16, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, expert_bytes=1 << 18, seed=1,
    )
    return run_load_sweep(
        cost, Scheme.MD_LB, planner, RATES,
        n_requests=60, seed=1,
        mean_prompt_tokens=20, mean_decode_tokens=5,
        cosim_config=CosimConfig(max_iterations=16),
    )


def test_hockey_stick_and_convergence(sweep):
    """The acceptance criteria: converged within budget at low load,
    monotone closed-loop p99 across the rate grid, closed >= open at
    saturation while matching open at near-zero load."""
    result, runs = sweep
    assert len(result.points) == len(RATES)
    low, mid, high = result.points
    assert low.converged and low.n_iterations <= 16
    closed = [p.closed_p99 for p in result.points]
    assert closed == sorted(closed)
    assert closed[0] < closed[-1]
    # Near-zero load: closed-loop matches open-loop within tolerance.
    assert low.closed_p99 == pytest.approx(low.open_p99, rel=0.05)
    # Saturating load: the feedback strictly inflates the tail.
    assert high.closed_p99 >= high.open_p99
    assert high.closed_p99 > 5 * high.open_p99
    # Open-loop curves come from iteration 0 of each run.
    assert runs[0].open_loop.latency_percentile(99) == pytest.approx(low.open_p99)


def test_json_round_trip(sweep, tmp_path):
    result, _ = sweep
    path = tmp_path / "sweep.json"
    result.save(path)
    loaded = SweepResult.load(path)
    assert loaded.scheme == result.scheme
    assert loaded.points == result.points
    assert loaded.config == result.config
    assert loaded.n_requests == result.n_requests


def test_version_rejection(sweep, tmp_path):
    result, _ = sweep
    doc = result.to_dict()
    doc["version"] = 99
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="format version"):
        SweepResult.load(path)
    doc["version"] = 1
    doc["kind"] = "other"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="cosim sweep"):
        SweepResult.load(path)


def test_format_sweep_renders(sweep):
    result, _ = sweep
    table = format_sweep(result)
    lines = table.splitlines()
    assert "closed p99" in lines[0]
    assert len(lines) == 2 + len(RATES)


def test_rate_grid_validation(sweep):
    cost = CostModel(encode_seconds_per_token=1e-9, decode_seconds_per_token=1e-8)
    planner = ExpertReplayPlanner(
        n_experts=4, top_k=1, n_moe_layers=1, dram_config=small_cosim_dram()
    )
    with pytest.raises(ValueError):
        run_load_sweep(cost, Scheme.MD_LB, planner, [])
    with pytest.raises(ValueError):
        run_load_sweep(cost, Scheme.MD_LB, planner, [2.0, 1.0])


def test_parallel_sweep_matches_serial(sweep):
    """Rate-grid points are independent; running them over a worker
    pool must reproduce the serial sweep bit for bit (each worker gets
    the same pickled planner/cost model and per-point seeding)."""
    serial_result, _ = sweep
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    planner = ExpertReplayPlanner(
        n_experts=16, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, expert_bytes=1 << 18, seed=1,
    )
    parallel_result, parallel_runs = run_load_sweep(
        cost, Scheme.MD_LB, planner, RATES,
        n_requests=60, seed=1,
        mean_prompt_tokens=20, mean_decode_tokens=5,
        cosim_config=CosimConfig(max_iterations=16),
        workers=2,
    )
    assert parallel_result.points == serial_result.points
    assert parallel_result.to_dict() == serial_result.to_dict()
    assert len(parallel_runs) == len(RATES)
    assert all(run.closed_loop is not None for run in parallel_runs)


def test_workers_validation(sweep):
    _, _ = sweep
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    planner = ExpertReplayPlanner(
        n_experts=16, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, expert_bytes=1 << 18, seed=1,
    )
    with pytest.raises(ValueError):
        run_load_sweep(cost, Scheme.MD_LB, planner, [1.0], workers=-1)
