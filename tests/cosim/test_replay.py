"""Expert-faithful replay: routing-derived regions, determinism."""

import numpy as np
import pytest

from repro.core.strategies import Scheme
from repro.cosim import ExpertReplayPlanner, SyntheticReplayPlanner, small_cosim_dram
from repro.moe.gating import Router
from repro.serving.simulator import CostModel, ServingSimulator
from repro.serving.workload import Request


def serve(n=6, prompt=20, decode=5):
    cost = CostModel(encode_seconds_per_token=1e-7, decode_seconds_per_token=1e-6)
    requests = [
        Request(
            request_id=i, arrival=0.001 * (i + 1),
            prompt_tokens=prompt, decode_tokens=decode,
        )
        for i in range(n)
    ]
    return ServingSimulator(cost, Scheme.MD_LB).run(requests)


def planner(**kwargs):
    defaults = dict(
        n_experts=8, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=1024,
        max_blocks_per_request=256, expert_bytes=1 << 16, seed=5,
    )
    defaults.update(kwargs)
    return ExpertReplayPlanner(**defaults)


def test_validation():
    with pytest.raises(ValueError):
        planner(n_experts=0)
    with pytest.raises(ValueError):
        planner(top_k=9)  # > n_experts
    with pytest.raises(ValueError):
        planner(n_moe_layers=0)
    with pytest.raises(ValueError):
        planner(bytes_per_token=0)
    with pytest.raises(ValueError):
        planner(max_blocks_per_request=0)
    with pytest.raises(ValueError):
        planner(expert_bytes=0)
    with pytest.raises(ValueError):
        planner(max_routed_tokens=0)
    with pytest.raises(ValueError):
        p = planner()
        p.request_blocks(0, tokens=0)


def test_replay_shape_and_arrivals():
    result = serve()
    trace = planner().replay(result)
    n = len(trace)
    assert n > 0
    assert trace.addrs.shape == (n,)
    assert trace.arrive_cycles.shape == (n,)
    assert trace.flags.shape == (n,)
    assert trace.request_ids.shape == (n,)
    assert not trace.flags.any()  # weight fetches are reads
    # Arrivals are the serving service-start cycles.
    clock = small_cosim_dram().timing.clock_hz
    starts = {
        c.request.request_id: int(round(c.start * clock)) for c in result.completed
    }
    for rid in np.unique(trace.request_ids):
        burst = trace.arrive_cycles[trace.request_ids == rid]
        assert (burst == starts[int(rid)]).all()


def test_block_count_follows_tokens():
    p = planner()
    # 25 tokens * 1024 B/token / 64 B = 400 blocks, capped at 256.
    assert len(p.request_blocks(0, tokens=25)) == 256
    assert len(p.request_blocks(0, tokens=4)) == 64


def test_addresses_deterministic_and_stable():
    p = planner()
    a = p.request_blocks(3, tokens=25)
    b = p.request_blocks(3, tokens=25)
    assert (a == b).all()
    # Stable across planner instances with the same seed...
    assert (planner().request_blocks(3, tokens=25) == a).all()
    # ...and different under another seed or request id.
    assert not (planner(seed=6).request_blocks(3, tokens=25) == a).all()
    assert not (p.request_blocks(4, tokens=25) == a).all()
    assert p.stable_addresses


def test_blocks_land_in_activated_expert_regions():
    p = planner()
    region_blocks = p._region_blocks
    total_regions = p.n_moe_layers * p.n_experts
    blocks = p.request_blocks(1, tokens=25)
    regions = set((blocks // region_blocks).tolist())
    # A top-2-of-8 request touches a handful of regions, not all.
    assert 1 <= len(regions) < total_regions
    assert all(0 <= r < total_regions for r in regions)


def test_router_driven_replay_targets_routed_experts():
    """With real gating networks, a burst targets exactly the experts
    the top-k router selected for the request's tokens."""
    rng = np.random.default_rng(11)
    routers = [Router(d_model=8, n_experts=4, top_k=1, rng=rng) for _ in range(2)]
    p = ExpertReplayPlanner(
        n_experts=4, top_k=1, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=1024,
        max_blocks_per_request=64, expert_bytes=1 << 16,
        routers=routers, max_routed_tokens=8, seed=5,
    )
    # Recompute the routing the planner will see (same seeded rng).
    req_rng = np.random.default_rng((5, 2))
    active = set()
    for layer, router in enumerate(routers):
        plan = router.route(req_rng.standard_normal((8, 8)))
        active.update(layer * 4 + e for e in plan.active_experts.tolist())
    blocks = p.request_blocks(2, tokens=8)
    touched = set((blocks // p._region_blocks).tolist())
    assert touched <= active

    with pytest.raises(ValueError):
        ExpertReplayPlanner(
            n_experts=4, top_k=1, n_moe_layers=3, routers=routers,
            dram_config=small_cosim_dram(),
        )


def test_for_model_geometry():
    from repro.moe.zoo import switch_large_128

    model = switch_large_128()
    p = ExpertReplayPlanner.for_model(model, dram_config=small_cosim_dram())
    assert p.n_experts == model.n_experts
    assert p.top_k == model.top_k
    assert p.n_moe_layers == max(1, model.n_moe_encoder_layers)


def test_synthetic_planner_matches_serving_replay():
    from repro.serving.simulator import dram_replay_trace_arrays

    result = serve()
    p = SyntheticReplayPlanner(
        dram_config=small_cosim_dram(), bytes_per_token=1024,
        max_blocks_per_request=256, seed=5,
    )
    trace = p.replay(result)
    addrs, arrive, flags = dram_replay_trace_arrays(
        result, dram_config=small_cosim_dram(), bytes_per_token=1024,
        max_blocks_per_request=256, seed=5,
    )
    assert (trace.addrs == addrs).all()
    assert (trace.arrive_cycles == arrive).all()
    assert not p.stable_addresses
    assert trace.tokens_by_request == {
        c.request.request_id: c.request.prompt_tokens + c.request.decode_tokens
        for c in result.completed
    }
