"""Closed-loop cosim tests."""
