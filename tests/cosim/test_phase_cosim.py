"""Phase-aware co-simulation: the batching engine through the loop.

Covers the per-phase trace (burst ids / phase labels, stable per-
request block unions), the two-surcharge fixed point, the headline
comparison (batching p99 at or below fifo p99 at a saturating load on
a decode-heavy mix -- the paper's bandwidth-bound regime), and the
engine-aware sweep with its SLO-capacity answer.
"""

import numpy as np
import pytest

from repro.core.strategies import Scheme
from repro.cosim import (
    PHASE_DECODE,
    PHASE_PREFILL,
    CosimConfig,
    CosimDriver,
    ExpertReplayPlanner,
    SyntheticReplayPlanner,
    run_load_sweep,
    slo_capacity,
    small_cosim_dram,
)
from repro.cosim.sweep import SweepPoint
from repro.serving.engine import BatchConfig, BatchingEngine, PhaseCostModel
from repro.serving.simulator import CostModel, ServingSimulator
from repro.serving.workload import RequestGenerator

SATURATING_RATE = 4e6
# Decode-heavy mix: most tokens are bandwidth-bound decodes, where
# batch-amortized weight streaming separates batching from fifo.
MEAN_PROMPT = 8
MEAN_DECODE = 24


@pytest.fixture(scope="module")
def parts():
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    return cost, make_planner


def make_planner():
    return ExpertReplayPlanner(
        n_experts=16, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, expert_bytes=1 << 18, seed=1,
    )


def requests_at(rate, n=60, seed=1):
    return RequestGenerator(
        rate, mean_prompt_tokens=MEAN_PROMPT, mean_decode_tokens=MEAN_DECODE, seed=seed
    ).generate(n)


def run_engine(cost, rate, engine, n=60, max_iterations=16):
    driver = CosimDriver(
        cost, Scheme.MD_LB, make_planner(),
        CosimConfig(max_iterations=max_iterations, engine=engine),
    )
    try:
        return driver.run(requests_at(rate, n))
    finally:
        driver.close()


# -- the phase trace --------------------------------------------------------


def test_phase_trace_structure(parts):
    cost, _ = parts
    planner = make_planner()
    serving = BatchingEngine(
        PhaseCostModel.from_cost_model(cost, decode_marginal_fraction=0.5),
        Scheme.MD_LB,
        BatchConfig(),
    ).run(requests_at(1e5))
    trace = planner.replay(serving)
    assert trace.burst_ids is not None and trace.phases is not None
    assert len(trace.burst_ids) == len(trace) == len(trace.phases)
    assert set(np.unique(trace.phases)) <= {PHASE_PREFILL, PHASE_DECODE}
    assert (np.unique(trace.phases) == [PHASE_PREFILL, PHASE_DECODE]).all()
    # Each request's block union is exactly the legacy deterministic
    # stream -- phase bursts re-time the traffic, they don't change it.
    for c in serving.completed[:10]:
        rid = c.request.request_id
        tokens = c.request.prompt_tokens + c.request.decode_tokens
        mask = trace.request_ids == rid
        legacy = planner.request_blocks(rid, tokens) * planner._step
        assert set(trace.addrs[mask].tolist()) <= set(legacy.tolist())
        # Prefill traffic is emitted before any decode burst.
        pre = trace.arrive_cycles[mask & (trace.phases == PHASE_PREFILL)]
        dec = trace.arrive_cycles[mask & (trace.phases == PHASE_DECODE)]
        if len(pre) and len(dec):
            assert pre.max() <= dec.min()


def test_decode_bursts_amortize_with_batch(parts):
    cost, _ = parts
    planner = make_planner()

    def decode_elems(max_batch):
        serving = BatchingEngine(
            PhaseCostModel.from_cost_model(cost, decode_marginal_fraction=0.5),
            Scheme.MD_LB,
            BatchConfig(max_batch=max_batch),
        ).run(requests_at(SATURATING_RATE))
        trace = planner.replay(serving)
        return int((trace.phases == PHASE_DECODE).sum())

    # At saturating load a deeper batch shares the weight stream, so
    # the emitted decode traffic shrinks.  (max_batch=1 is the fused
    # fifo path and carries no phase labels at all.)
    assert decode_elems(8) < decode_elems(2)


# -- the two-surcharge fixed point ------------------------------------------


def test_batching_loop_converges_with_phase_extras(parts):
    cost, _ = parts
    result = run_engine(cost, SATURATING_RATE, "batching")
    assert result.converged
    assert result.extra_prefill_seconds_per_token >= 0
    assert result.extra_decode_seconds_per_token >= 0
    assert (
        result.extra_prefill_seconds_per_token
        + result.extra_decode_seconds_per_token
    ) > 0
    last = result.iterations[-1]
    assert last.serving_ttft_p99 > 0
    assert last.serving_queue_delay_p99 >= 0
    assert last.measured_prefill_seconds_per_token >= 0
    assert last.measured_decode_seconds_per_token >= 0
    assert result.closed_loop.engine == "batching"


def test_batching_low_load_matches_open_loop(parts):
    cost, _ = parts
    result = run_engine(cost, 2e4, "batching")
    assert result.converged
    open_p99 = result.open_loop.latency_percentile(99)
    closed_p99 = result.closed_loop.latency_percentile(99)
    assert closed_p99 == pytest.approx(open_p99, rel=0.05)


def test_batching_beats_fifo_at_saturation(parts):
    """The headline: continuous batching's amortized decode streaming
    keeps the closed-loop tail below fifo's at a saturating load."""
    cost, _ = parts
    fifo = run_engine(cost, SATURATING_RATE, "fifo")
    batching = run_engine(cost, SATURATING_RATE, "batching")
    assert fifo.converged and batching.converged
    assert (
        batching.closed_loop.latency_percentile(99)
        <= fifo.closed_loop.latency_percentile(99)
    )


def test_synthetic_planner_batching_token_share_fallback(parts):
    """A planner without phase bursts still drives the batching loop
    (lump contention split by token share)."""
    cost, _ = parts
    planner = SyntheticReplayPlanner(
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, seed=1,
    )
    driver = CosimDriver(
        cost, Scheme.MD_LB, planner,
        CosimConfig(max_iterations=8, engine="batching"),
    )
    try:
        result = driver.run(requests_at(1e5, n=30))
    finally:
        driver.close()
    assert result.closed_loop is not None
    assert result.closed_loop.n_completed == 30


# -- the engine-aware sweep -------------------------------------------------


def test_sweep_batching_engine_and_slo(parts):
    cost, _ = parts
    rates = [1e5, SATURATING_RATE]
    sweep, runs = run_load_sweep(
        cost, Scheme.MD_LB, make_planner(), rates,
        n_requests=40,
        mean_prompt_tokens=MEAN_PROMPT, mean_decode_tokens=MEAN_DECODE,
        cosim_config=CosimConfig(max_iterations=12, engine="batching"),
    )
    assert sweep.engine == "batching"
    assert sweep.config["engine"] == "batching"
    assert sweep.config["max_batch"] == 8
    assert sweep.slo_p99_seconds > 0
    assert sweep.slo_auto
    assert 0 < sweep.slo_capacity_rps <= rates[-1]
    for p in sweep.points:
        assert p.closed_ttft_p99 > 0
        assert p.closed_queue_delay_p99 >= 0
        assert p.closed_tpot_p99 >= 0
    # Round-trip through the versioned JSON keeps the new fields.
    d = sweep.to_dict()
    from repro.cosim import SweepResult

    back = SweepResult.from_dict(d)
    assert back.engine == "batching"
    assert back.slo_capacity_rps == sweep.slo_capacity_rps
    assert back.points[0].closed_ttft_p99 == sweep.points[0].closed_ttft_p99


def test_serving_only_sweep_matches_simulator(parts):
    """planner=None runs the engine open loop and wraps each point as
    a trivially-converged cosim result."""
    cost, _ = parts
    rates = [1e5, 1e6]
    sweep, runs = run_load_sweep(
        cost, Scheme.MD_LB, None, rates,
        n_requests=50, seed=1,
        mean_prompt_tokens=MEAN_PROMPT, mean_decode_tokens=MEAN_DECODE,
    )
    assert sweep.config["serving_only"]
    for rate, run in zip(rates, runs):
        assert run.converged
        direct = ServingSimulator(cost, Scheme.MD_LB).run(
            requests_at(rate, n=50)
        )
        assert run.closed_loop.latency_percentile(99) == direct.latency_percentile(99)
        assert run.closed_loop.busy_seconds == direct.busy_seconds


def test_slo_capacity_interpolation():
    def point(rate, p99):
        return SweepPoint(
            rate=rate, converged=True, n_iterations=1,
            open_p50=0.0, open_p99=p99, open_max=p99,
            closed_p50=0.0, closed_p99=p99, closed_max=p99,
            utilization=0.5, completed=1, rejected=0,
            extra_seconds_per_token=0.0,
            dram_queue_delay_mean=0.0, dram_queue_delay_p99=0.0,
            dram_idle_cycles=0, dram_total_cycles=1,
        )

    points = [point(1.0, 1e-3), point(2.0, 3e-3), point(4.0, 9e-3)]
    # Threshold between the first two grid points: linear interpolation.
    assert slo_capacity(points, 2e-3) == pytest.approx(1.5)
    # All compliant -> the highest rate; none compliant -> zero.
    assert slo_capacity(points, 1.0) == pytest.approx(4.0)
    assert slo_capacity(points, 1e-6) == 0.0
