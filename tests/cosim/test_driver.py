"""Closed-loop fixed point: convergence and load response.

The acceptance property: at near-zero offered load the closed loop
reproduces the open-loop latencies (no memory contention to feed
back), at saturating load the closed-loop p99 sits strictly above the
open-loop p99 (the feedback the open-loop replay cannot produce), and
the loop reports convergence within its iteration budget.
"""

import pytest

from repro.core.strategies import Scheme
from repro.cosim import (
    CosimConfig,
    CosimDriver,
    ExpertReplayPlanner,
    SyntheticReplayPlanner,
    small_cosim_dram,
)
from repro.serving.simulator import CostModel
from repro.serving.workload import RequestGenerator

LOW_RATE = 2e4
SATURATING_RATE = 4e6


@pytest.fixture(scope="module")
def parts():
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    planner = ExpertReplayPlanner(
        n_experts=16, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, expert_bytes=1 << 18, seed=1,
    )
    return cost, planner


def run_at(rate, cost, planner, n_requests=60, max_iterations=16):
    generator = RequestGenerator(
        rate, mean_prompt_tokens=20, mean_decode_tokens=5, seed=1
    )
    driver = CosimDriver(
        cost, Scheme.MD_LB, planner,
        CosimConfig(max_iterations=max_iterations),
    )
    return driver.run(generator.generate(n_requests))


def test_converges_at_low_load_and_matches_open_loop(parts):
    cost, planner = parts
    result = run_at(LOW_RATE, cost, planner)
    assert result.converged
    assert result.n_iterations <= CosimConfig().max_iterations
    open_p99 = result.open_loop.latency_percentile(99)
    closed_p99 = result.closed_loop.latency_percentile(99)
    # No contention at near-zero load: closed == open within 5%.
    assert closed_p99 == pytest.approx(open_p99, rel=0.05)
    assert result.extra_seconds_per_token < 1e-10


def test_saturating_load_inflates_p99(parts):
    cost, planner = parts
    result = run_at(SATURATING_RATE, cost, planner)
    assert result.converged
    open_p99 = result.open_loop.latency_percentile(99)
    closed_p99 = result.closed_loop.latency_percentile(99)
    assert closed_p99 >= open_p99
    # And not marginally: memory queueing dominates at saturation.
    assert closed_p99 > 5 * open_p99
    assert result.extra_seconds_per_token > 0


def test_iteration_records(parts):
    cost, planner = parts
    result = run_at(1e6, cost, planner)
    assert result.converged
    its = result.iterations
    assert len(its) == result.n_iterations
    assert [it.index for it in its] == list(range(len(its)))
    assert its[0].extra_seconds_per_token == 0.0
    assert its[0].p99_delta == float("inf")
    # The final iteration met the p99 tolerance.
    assert its[-1].p99_delta <= CosimConfig().p99_tolerance
    for it in its:
        assert it.completed > 0
        assert it.dram_total_cycles > 0
        assert it.measured_seconds_per_token >= 0
    # The final trace/stats correspond to a real run and are exportable.
    assert result.final_trace is not None
    assert len(result.final_trace) == result.final_dram_stats.requests


def test_synthetic_planner_loop_runs(parts):
    cost, _ = parts
    planner = SyntheticReplayPlanner(
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, seed=1,
    )
    result = run_at(1e6, cost, planner, n_requests=40)
    assert result.n_iterations >= 1
    assert result.final_dram_stats.queue_delay_max > 0


def test_isolation_baseline_is_contention_free(parts):
    """The serialized calibration run reports zero cross-request
    contention against itself: feeding a trace's own isolated
    makespans back subtracts them exactly."""
    cost, planner = parts
    generator = RequestGenerator(
        LOW_RATE, mean_prompt_tokens=20, mean_decode_tokens=5, seed=2
    )
    driver = CosimDriver(cost, Scheme.MD_LB, planner, CosimConfig())
    from repro.serving.simulator import ServingSimulator

    serving = ServingSimulator(cost, Scheme.MD_LB).run(generator.generate(20))
    trace = planner.replay(serving)
    iso_a = driver._isolated_makespans(trace)
    iso_b = driver._isolated_makespans(trace)
    assert iso_a == iso_b
    assert set(iso_a) == set(trace.tokens_by_request)
    assert all(mk > 0 for mk in iso_a.values())


def test_config_validation():
    with pytest.raises(ValueError):
        CosimConfig(damping=0.0)
    with pytest.raises(ValueError):
        CosimConfig(damping=1.5)
    with pytest.raises(ValueError):
        CosimConfig(damping_decay=-1)
    with pytest.raises(ValueError):
        CosimConfig(max_iterations=0)
    with pytest.raises(ValueError):
        CosimConfig(p99_tolerance=-0.1)
    with pytest.raises(ValueError):
        CosimConfig(queue_limit=0)


def test_empty_requests_rejected(parts):
    cost, planner = parts
    with pytest.raises(ValueError):
        CosimDriver(cost, Scheme.MD_LB, planner).run([])


def test_driver_reuse_recalibrates_baselines(parts):
    """A second run() with a different request list (same request_ids,
    different token counts -> different bursts) must not reuse the
    first run's isolation baselines."""
    cost, planner = parts
    driver = CosimDriver(cost, Scheme.MD_LB, planner, CosimConfig())
    gen_a = RequestGenerator(LOW_RATE, mean_prompt_tokens=20,
                             mean_decode_tokens=5, seed=1)
    driver.run(gen_a.generate(10))
    cache_a = dict(driver._iso_cache)
    gen_b = RequestGenerator(LOW_RATE, mean_prompt_tokens=120,
                             mean_decode_tokens=40, seed=8)
    driver.run(gen_b.generate(10))
    cache_b = dict(driver._iso_cache)
    assert set(cache_a) == set(cache_b) == set(range(10))
    assert cache_a != cache_b


def test_dram_workers_bit_identical_loop(parts):
    """A pooled DRAM replay (dram_workers=2) is bit-identical per
    iteration to the serial loop -- the convergence trajectory, not
    just the endpoint, must not change."""
    cost, planner = parts
    generator = RequestGenerator(
        1e6, mean_prompt_tokens=20, mean_decode_tokens=5, seed=1
    )
    requests = generator.generate(40)
    serial = CosimDriver(
        cost, Scheme.MD_LB, planner, CosimConfig(max_iterations=16)
    ).run(requests)
    pooled_driver = CosimDriver(
        cost, Scheme.MD_LB, planner,
        CosimConfig(max_iterations=16, dram_workers=2),
    )
    try:
        pooled = pooled_driver.run(requests)
    finally:
        pooled_driver.close()
    assert pooled.iterations == serial.iterations
    assert pooled.converged == serial.converged
    assert pooled.extra_seconds_per_token == serial.extra_seconds_per_token


def test_non_convergence_reports_best_residual_iterate(parts):
    """A loop that exhausts its budget must report the iterate with the
    smallest |measured - applied| residual -- not whatever iteration
    happened to run last -- and expose that residual."""
    cost, planner = parts
    generator = RequestGenerator(
        SATURATING_RATE, mean_prompt_tokens=20, mean_decode_tokens=5, seed=1
    )
    driver = CosimDriver(
        cost, Scheme.MD_LB, planner,
        # tolerance 0: convergence is impossible short of an exact
        # fixed point, so the budget always runs out.
        CosimConfig(max_iterations=4, p99_tolerance=0.0),
    )
    result = driver.run(generator.generate(40))
    assert not result.converged
    residuals = [
        abs(it.measured_seconds_per_token - it.extra_seconds_per_token)
        for it in result.iterations
    ]
    best = min(range(len(residuals)), key=lambda i: residuals[i])
    assert result.residual_seconds_per_token == residuals[best]
    assert result.extra_seconds_per_token == (
        result.iterations[best].extra_seconds_per_token
    )
    assert result.closed_loop.latency_percentile(99) == (
        result.iterations[best].serving_p99
    )


def test_converged_run_residual_within_tolerance(parts):
    cost, planner = parts
    result = run_at(LOW_RATE, cost, planner)
    assert result.converged
    last = result.iterations[-1]
    assert result.residual_seconds_per_token == abs(
        last.measured_seconds_per_token - last.extra_seconds_per_token
    )
