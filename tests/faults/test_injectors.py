"""The injectors themselves: plans, counters, corruption helpers.

The recovery suites (``tests/dram/test_supervision.py``,
``tests/workloads/test_trace_corruption.py``,
``tests/cosim/test_checkpoint.py``) trust these injectors to fire
deterministically; this file pins that contract -- env round trips,
exactly-N claim counting across processes, validation, and the byte
surgery the trace corruptors perform.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.faults import (
    FAULT_ENV_VAR,
    WorkerFaultPlan,
    bit_flip_trace,
    interrupt_after,
    maybe_inject_worker_fault,
    truncate_trace,
    worker_faults,
    zero_header_count,
)
from repro.faults.chaos import ChaosScenario, format_chaos
from repro.workloads.trace_io import (
    HEADER_BYTES,
    RECORD_BYTES,
    read_header,
    write_trace,
)


def test_plan_env_round_trip(tmp_path):
    plan = WorkerFaultPlan(
        kind="raise", counter_dir=str(tmp_path), channel=3, times=2,
        hang_seconds=5.0,
    )
    assert WorkerFaultPlan.from_env(plan.to_env()) == plan


def test_plan_validation(tmp_path):
    with pytest.raises(ValueError, match="unknown worker fault kind"):
        WorkerFaultPlan(kind="explode", counter_dir=str(tmp_path))
    with pytest.raises(ValueError, match="times"):
        WorkerFaultPlan(kind="raise", counter_dir=str(tmp_path), times=0)
    with pytest.raises(ValueError, match="hang_seconds"):
        WorkerFaultPlan(kind="hang", counter_dir=str(tmp_path), hang_seconds=0.0)


def test_claim_counts_exactly_n(tmp_path):
    plan = WorkerFaultPlan(kind="raise", counter_dir=str(tmp_path), times=3)
    claims = [plan.claim(0) for _ in range(10)]
    assert claims == [True] * 3 + [False] * 7
    assert plan.injections_fired() == 3


def test_claim_respects_channel_filter(tmp_path):
    plan = WorkerFaultPlan(
        kind="raise", counter_dir=str(tmp_path), channel=2, times=5
    )
    assert not plan.claim(0)
    assert not plan.claim(1)
    assert plan.claim(2)
    assert plan.injections_fired() == 1


def _claim_in_subprocess(env_payload, queue):
    plan = WorkerFaultPlan.from_env(env_payload)
    queue.put(plan.claim(0))


def test_claim_is_atomic_across_processes(tmp_path):
    """O_CREAT|O_EXCL sequencing: N slots, more claimants than slots,
    exactly N winners regardless of process boundaries."""
    plan = WorkerFaultPlan(kind="raise", counter_dir=str(tmp_path), times=2)
    ctx = multiprocessing.get_context()
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_claim_in_subprocess, args=(plan.to_env(), queue))
        for _ in range(6)
    ]
    for p in procs:
        p.start()
    results = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
    assert sum(results) == 2
    assert plan.injections_fired() == 2


def test_worker_faults_restores_environment(tmp_path):
    before = os.environ.get(FAULT_ENV_VAR)
    with worker_faults("raise", times=1) as plan:
        assert os.environ[FAULT_ENV_VAR] == plan.to_env()
        assert os.path.isdir(plan.counter_dir)
    assert os.environ.get(FAULT_ENV_VAR) == before
    assert not os.path.exists(plan.counter_dir)


def test_maybe_inject_is_noop_without_plan(monkeypatch):
    monkeypatch.delenv(FAULT_ENV_VAR, raising=False)
    maybe_inject_worker_fault(0)  # must not raise


def test_maybe_inject_raise_kind(tmp_path, monkeypatch):
    from repro.faults import InjectedWorkerFault

    plan = WorkerFaultPlan(kind="raise", counter_dir=str(tmp_path), times=1)
    monkeypatch.setenv(FAULT_ENV_VAR, plan.to_env())
    with pytest.raises(InjectedWorkerFault):
        maybe_inject_worker_fault(0)
    maybe_inject_worker_fault(0)  # plan exhausted -> no-op


def test_truncate_trace_surgery(tmp_path):
    path = tmp_path / "t.dramtrace"
    write_trace(path, np.arange(10, dtype=np.int64) * 64)
    new_size = truncate_trace(path, keep_records=4)
    assert new_size == HEADER_BYTES + 4 * RECORD_BYTES
    assert path.stat().st_size == new_size
    with pytest.raises(ValueError, match="cannot truncate"):
        truncate_trace(path, keep_records=100)
    with pytest.raises(ValueError, match="non-negative"):
        truncate_trace(path, keep_records=-1)


def test_bit_flip_trace_flips_exactly_one_bit(tmp_path):
    path = tmp_path / "t.dramtrace"
    addrs = np.arange(10, dtype=np.int64) * 64
    write_trace(path, addrs)
    before = path.read_bytes()
    bit_flip_trace(path, record_index=3, bit=62)
    after = path.read_bytes()
    assert len(before) == len(after)
    diff = [i for i, (a, b) in enumerate(zip(before, after)) if a != b]
    assert len(diff) == 1
    assert diff[0] == HEADER_BYTES + 3 * RECORD_BYTES + 62 // 8
    with pytest.raises(ValueError, match="bit"):
        bit_flip_trace(path, record_index=0, bit=64)


def test_zero_header_count_only_touches_header(tmp_path):
    path = tmp_path / "t.dramtrace"
    write_trace(path, np.arange(6, dtype=np.int64) * 64)
    records_before = path.read_bytes()[HEADER_BYTES:]
    zero_header_count(path)
    with pytest.raises(ValueError):
        read_header(path)  # size no longer matches the n=0 header
    assert path.read_bytes()[HEADER_BYTES:] == records_before


def test_interrupt_after_validation():
    with pytest.raises(ValueError, match="non-negative"):
        interrupt_after(-1)


def test_format_chaos_renders_pass_and_fail():
    report = [
        ChaosScenario(name="good", passed=True, detail="all fine"),
        ChaosScenario(name="bad", passed=False, detail="Traceback:\nboom"),
    ]
    text = format_chaos(report)
    assert "[PASS] good" in text
    assert "[FAIL] bad" in text
    assert "1/2 scenario(s) passed" in text
