"""Fault-injection harness tests."""
