"""Systolic MAC arrays and SIMD cluster."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ndp.systolic import MACArray, SystolicCluster


def test_array_dims_and_skew():
    array = MACArray(4, 4)
    assert array.skew_cycles == 6
    assert array.tile_cycles(100) == 106
    assert array.tile_cycles(0) == 0


def test_tile_cycles_rejects_negative():
    with pytest.raises(ValueError):
        MACArray().tile_cycles(-1)


def test_array_functional_matches_matmul():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(3, 17))
    b = rng.normal(size=(17, 4))
    out = MACArray().compute(a, b)
    np.testing.assert_allclose(out, a @ b)


def test_array_rejects_oversized_tiles():
    array = MACArray(4, 4)
    with pytest.raises(ValueError):
        array.compute(np.zeros((5, 8)), np.zeros((8, 4)))
    with pytest.raises(ValueError):
        array.compute(np.zeros((4, 8)), np.zeros((8, 5)))
    with pytest.raises(ValueError):
        array.compute(np.zeros((4, 8)), np.zeros((9, 4)))


def test_cluster_geometry_matches_paper():
    """64 arrays x 4 cols = the 4x256 stripe of Section 3.1."""
    cluster = SystolicCluster()
    assert cluster.tile_rows == 4
    assert cluster.tile_cols == 256
    assert cluster.macs_per_cycle == 1024


def test_cluster_simd_lockstep_timing():
    """All 64 arrays finish together: stripe time == array time."""
    cluster = SystolicCluster()
    assert cluster.stripe_cycles(512) == MACArray().tile_cycles(512)


def test_cluster_functional_stripe():
    rng = np.random.default_rng(1)
    cluster = SystolicCluster(n_arrays=4, rows=4, cols=4)  # 4x16 stripe
    a = rng.normal(size=(4, 32))
    b = rng.normal(size=(32, 16))
    np.testing.assert_allclose(cluster.compute_stripe(a, b), a @ b)


def test_cluster_partial_stripe():
    rng = np.random.default_rng(2)
    cluster = SystolicCluster(n_arrays=4, rows=4, cols=4)
    a = rng.normal(size=(2, 8))
    b = rng.normal(size=(8, 10))  # not a multiple of 4 columns
    np.testing.assert_allclose(cluster.compute_stripe(a, b), a @ b)


def test_cluster_rejects_overwide_stripe():
    cluster = SystolicCluster(n_arrays=2, rows=4, cols=4)
    with pytest.raises(ValueError):
        cluster.compute_stripe(np.zeros((4, 8)), np.zeros((8, 9)))


@given(
    m=st.integers(1, 4), k=st.integers(1, 64), n=st.integers(1, 16)
)
def test_cluster_matches_matmul_property(m, k, n):
    rng = np.random.default_rng(m * 1000 + k * 10 + n)
    cluster = SystolicCluster(n_arrays=4, rows=4, cols=4)
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    np.testing.assert_allclose(cluster.compute_stripe(a, b), a @ b, rtol=1e-10)
