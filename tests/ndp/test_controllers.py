"""NDP / CXL controllers and the MMIO protocol."""

import numpy as np
import pytest

from repro.core.instructions import CXLFlit, Opcode
from repro.ndp.controllers import (
    CXLController,
    MMIORegisters,
    NDPController,
    encode_gemm,
)
from repro.ndp.device import MoNDEDevice


@pytest.fixture
def device() -> MoNDEDevice:
    return MoNDEDevice()


@pytest.fixture
def ndp(device) -> NDPController:
    return NDPController(device)


@pytest.fixture
def cxl(ndp) -> CXLController:
    return CXLController(ndp)


def _gemm_payload(device, m=2, k=8, n=16, opcode=Opcode.GEMM):
    rng = np.random.default_rng(0)
    a = device.store_tensor(rng.normal(size=(m, k)), region="activation")
    b = device.store_tensor(rng.normal(size=(k, n)), region="expert")
    out = device.allocate(m * n * 2, region="activation")
    payload = encode_gemm(
        opcode, actin_addr=a.addr, wgt_addr=b.addr, actout_addr=out.addr,
        m=m, n=n, k=k,
    )
    return payload, a, b, out


def test_mmio_register_file():
    regs = MMIORegisters()
    assert regs.read(MMIORegisters.DONE) == 0
    regs.write(MMIORegisters.DONE, 1)
    assert regs.read(MMIORegisters.DONE) == 1
    with pytest.raises(KeyError):
        regs.read("bogus")
    with pytest.raises(KeyError):
        regs.write("bogus", 1)


def test_enqueue_clears_done_then_drain_raises_it(device, ndp):
    payload, *_ = _gemm_payload(device)
    ndp.enqueue(payload)
    assert ndp.mmio.read(MMIORegisters.DONE) == 0
    assert ndp.mmio.read(MMIORegisters.INST_COUNT) == 1
    elapsed = ndp.drain()
    assert elapsed > 0
    assert ndp.mmio.read(MMIORegisters.DONE) == 1
    assert ndp.mmio.read(MMIORegisters.INST_COUNT) == 0
    assert ndp.instructions_executed == 1


def test_drain_computes_correct_result(device, ndp):
    payload, a, b, out = _gemm_payload(device, opcode=Opcode.GEMM_RELU)
    ndp.enqueue(payload)
    ndp.drain()
    result = device.read_tensor(out.addr)
    expected = np.maximum(
        device.read_tensor(a.addr) @ device.read_tensor(b.addr), 0
    )
    np.testing.assert_allclose(result, expected)


def test_instruction_buffer_capacity(device):
    ndp = NDPController(device, inst_buffer_capacity=1)
    payload, *_ = _gemm_payload(device)
    ndp.enqueue(payload)
    with pytest.raises(BufferError):
        ndp.enqueue(payload)


def test_nop_costs_nothing(device, ndp):
    from repro.core.instructions import NDPInstruction

    nop = NDPInstruction(
        opcode=Opcode.NOP, actin_addr=0, actin_size=0, wgt_addr=0, wgt_size=0,
        actout_addr=0, actout_size=0, m=0, n=0, k=0,
    )
    ndp.enqueue(nop.encode())
    assert ndp.drain() == 0.0


def test_cxl_routes_ndp_flits(device, ndp, cxl):
    payload, *_ = _gemm_payload(device)
    cxl.receive(CXLFlit(address=0, payload=payload, ndp_flag=True))
    assert cxl.ndp_flits == 1
    assert len(ndp.inst_buffer) == 1
    assert not cxl.poll_done()
    ndp.drain()
    assert cxl.poll_done()


def test_cxl_routes_memory_flits(device, cxl):
    data = bytes(range(64))
    cxl.receive(CXLFlit(address=0x1000, payload=data, ndp_flag=False))
    assert cxl.mem_flits == 1
    assert device.read_raw(0x1000) == data


def test_busy_seconds_accumulates(device, ndp):
    payload, *_ = _gemm_payload(device)
    ndp.enqueue(payload)
    ndp.drain()
    first = ndp.busy_seconds
    payload2, *_ = _gemm_payload(device, m=4)
    ndp.enqueue(payload2)
    ndp.drain()
    assert ndp.busy_seconds > first


def test_zero_capacity_rejected(device):
    with pytest.raises(ValueError):
        NDPController(device, inst_buffer_capacity=0)
