"""Output-stationary tile schedule invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.specs import BF16_BYTES
from repro.ndp.tiling import OutputStationaryTiler


@pytest.fixture
def tiler() -> OutputStationaryTiler:
    return OutputStationaryTiler()


def test_empty_gemm_yields_nothing(tiler):
    assert list(tiler.tiles(0, 10, 10)) == []
    assert tiler.count_tiles(10, 0, 10) == 0


def test_cold_expert_single_m_stripe(tiler):
    """A 4-token expert GEMM is one m-stripe: weight traffic equals
    the full weight matrix exactly once."""
    m, n, k = 4, 8192, 2048
    traffic = tiler.total_traffic_bytes(m, n, k)
    weights = n * k * BF16_BYTES
    acts_and_outs = traffic - weights
    assert acts_and_outs < 0.05 * weights
    assert traffic >= weights


def test_weight_traffic_is_exactly_weights_once(tiler):
    """The weight-resident schedule never re-streams weights,
    regardless of M."""
    for m in (1, 4, 64, 1024):
        wgt = sum(t.wgt_bytes for t in tiler.tiles(m, 512, 256))
        assert wgt == 512 * 256 * BF16_BYTES


def test_k_chunk_respects_half_buffer(tiler):
    chunk = tiler.k_chunk(256)
    assert chunk * 256 * BF16_BYTES <= tiler.wgt_buffer_bytes // 2
    assert (chunk + 1) * 256 * BF16_BYTES > tiler.wgt_buffer_bytes // 2


def test_k_chunk_minimum_one():
    tiny = OutputStationaryTiler(wgt_buffer_bytes=16)
    assert tiny.k_chunk(256) == 1


def test_tiles_cover_output_exactly(tiler):
    """Every output element is produced by exactly one (m, n) stripe
    across all k-chunks."""
    m, n, k = 9, 700, 300
    coverage = np.zeros((m, n), dtype=int)
    rows, cols = tiler.tile_rows, tiler.tile_cols
    chunked = {}
    for t in tiler.tiles(m, n, k):
        chunked.setdefault((t.m_index, t.n_index), 0)
        chunked[(t.m_index, t.n_index)] += t.k
        if t.out_bytes:
            m0, n0 = t.m_index * rows, t.n_index * cols
            coverage[m0 : m0 + t.m, n0 : n0 + t.n] += 1
    assert (coverage == 1).all()
    # Each output stripe accumulates the full K depth.
    assert all(total == k for total in chunked.values())


def test_macs_sum_to_gemm_macs(tiler):
    m, n, k = 7, 520, 130
    total = sum(t.macs for t in tiler.tiles(m, n, k))
    assert total == m * n * k


def test_out_bytes_once_per_stripe(tiler):
    m, n, k = 8, 512, 1000
    out = sum(t.out_bytes for t in tiler.tiles(m, n, k))
    assert out == m * n * BF16_BYTES


def test_negative_dims_rejected(tiler):
    with pytest.raises(ValueError):
        list(tiler.tiles(-1, 2, 3))


@settings(max_examples=30)
@given(m=st.integers(1, 40), n=st.integers(1, 1200), k=st.integers(1, 600))
def test_tile_dims_within_limits(m, n, k):
    tiler = OutputStationaryTiler()
    for t in tiler.tiles(m, n, k):
        assert 1 <= t.m <= tiler.tile_rows
        assert 1 <= t.n <= tiler.tile_cols
        assert 1 <= t.k <= tiler.k_chunk(t.n)


@settings(max_examples=30)
@given(m=st.integers(1, 40), n=st.integers(1, 1200), k=st.integers(1, 600))
def test_traffic_conservation_property(m, n, k):
    """act >= m*k once; wgt == k*n once; out == m*n once."""
    tiler = OutputStationaryTiler()
    act = wgt = out = 0
    for t in tiler.tiles(m, n, k):
        act += t.act_bytes
        wgt += t.wgt_bytes
        out += t.out_bytes
    assert wgt == k * n * BF16_BYTES
    assert out == m * n * BF16_BYTES
    assert act >= m * k * BF16_BYTES
