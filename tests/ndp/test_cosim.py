"""DRAM <-> NDP co-simulation: the bandwidth abstraction is honest."""

import pytest

from repro.dram.request import RequestKind
from repro.hw.specs import MONDE_DEVICE
from repro.ndp.cosim import GEMMCosim
from repro.ndp.engine import NDPGemmEngine


@pytest.fixture(scope="module")
def cosim():
    engine = NDPGemmEngine(MONDE_DEVICE.ndp, MONDE_DEVICE.effective_bandwidth)
    return GEMMCosim(engine)


def test_request_stream_covers_all_traffic(cosim):
    m, n, k = 4, 512, 256
    requests = cosim.request_stream(m, n, k)
    total = len(requests) * 64
    expected = cosim.engine.tiler.total_traffic_bytes(m, n, k)
    # Block-rounding can only add partial-block padding.
    assert expected <= total <= expected * 1.1


def test_weights_read_activations_mixed(cosim):
    requests = cosim.request_stream(4, 512, 256)
    reads = sum(1 for r in requests if r.kind is RequestKind.READ)
    writes = len(requests) - reads
    assert reads > writes > 0


def test_streams_respect_bank_partition(cosim):
    """Weight requests decode to even banks, activation/output to odd."""
    requests = cosim.request_stream(4, 256, 128)
    from repro.dram.address import AddressMapper
    from repro.dram.config import LPDDR5X_8533

    mapper = AddressMapper(LPDDR5X_8533.organization)
    for r in requests:
        decoded = mapper.decode(r.addr)
        if r.kind is RequestKind.READ:
            assert decoded.bank % 2 in (0, 1)  # weights even, acts odd
        else:
            assert decoded.bank % 2 == 1


def test_cold_expert_estimate_within_tolerance(cosim):
    """For a cold-expert GEMM the engine's effective-bandwidth model
    must agree with the cycle-level replay to within 25%."""
    result = cosim.run(4, 1024, 512)
    assert abs(result.relative_error) < 0.25


@pytest.mark.parametrize("shape", [(1, 512, 256), (4, 768, 512), (8, 512, 300)])
def test_estimates_track_cycle_sim_across_shapes(cosim, shape):
    result = cosim.run(*shape)
    assert abs(result.relative_error) < 0.35
    assert result.dram_cycles > 0
