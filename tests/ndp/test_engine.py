"""NDP GEMM engine: cycle model + functional execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.specs import MONDE_DEVICE
from repro.ndp.engine import NDPGemmEngine


@pytest.fixture(scope="module")
def engine() -> NDPGemmEngine:
    return NDPGemmEngine(MONDE_DEVICE.ndp, MONDE_DEVICE.effective_bandwidth)


def test_zero_gemm_is_free(engine):
    ex = engine.gemm_execution(0, 10, 10)
    assert ex.seconds == 0.0 and ex.n_tiles == 0


def test_grouped_matches_tile_stream(engine):
    """The closed-form walk must agree exactly with iterating tiles."""
    for m, n, k in [(1, 256, 64), (4, 512, 100), (7, 300, 129), (33, 768, 200)]:
        comp = mem = pipe = traffic = 0
        first = None
        for t in engine.tiler.tiles(m, n, k):
            c = engine.cluster.stripe_cycles(t.k)
            b = t.act_bytes + t.wgt_bytes + t.out_bytes
            mc = int(np.ceil(b / engine.bytes_per_cycle))
            if first is None:
                first = mc
            comp += c
            mem += mc
            pipe += max(c, mc)
            traffic += b
        ex = engine.gemm_execution(m, n, k)
        assert ex.compute_cycles == comp
        assert ex.memory_cycles == mem
        assert ex.pipelined_cycles == first + pipe
        assert ex.dram_bytes == traffic


def test_cold_expert_is_bandwidth_bound(engine):
    """Cold experts (M <= 4) stream the weights once: time ~=
    expert_bytes / device bandwidth (the Eq. 4 approximation)."""
    ex1 = engine.gemm_execution(1, 8192, 2048)
    ex2 = engine.gemm_execution(4, 8192, 2048)
    stream = 2 * 8192 * 2048 / MONDE_DEVICE.effective_bandwidth
    assert ex1.seconds == pytest.approx(stream, rel=0.12)
    assert ex2.seconds == pytest.approx(stream, rel=0.12)
    # Compute and memory are within the rate-matched band; the time is
    # set by the weight stream, not by MAC throughput.
    assert ex1.compute_cycles < 1.1 * ex1.memory_cycles


def test_rate_matched_design_point(engine):
    """Section 3.1's intent: at M = 4 the 4x256 stripes keep both the
    MAC arrays and the DRAM stream near-fully utilized."""
    ex = engine.gemm_execution(4, 8192, 2048)
    ratio = ex.compute_cycles / ex.memory_cycles
    assert 0.5 < ratio < 1.5


def test_hot_expert_is_compute_bound(engine):
    ex = engine.gemm_execution(2048, 8192, 2048)
    assert not ex.is_memory_bound
    assert ex.achieved_flops < MONDE_DEVICE.ndp.peak_flops


def test_monotonic_in_tokens(engine):
    times = [
        engine.expert_ffn_time(t, 2048, 8192) for t in (1, 4, 16, 64, 256, 2048)
    ]
    for a, b in zip(times, times[1:]):
        assert b >= a


def test_expert_batch_time_sums_actives(engine):
    counts = [3, 0, 5, 0]
    expected = engine.expert_ffn_time(3, 1024, 4096) + engine.expert_ffn_time(
        5, 1024, 4096
    )
    assert engine.expert_batch_time(counts, 1024, 4096) == pytest.approx(expected)


def test_run_gemm_functional(engine):
    rng = np.random.default_rng(0)
    a = rng.normal(size=(6, 40))
    b = rng.normal(size=(40, 300))
    out, ex = engine.run_gemm(a, b)
    np.testing.assert_allclose(out, a @ b)
    assert ex.m == 6 and ex.n == 300 and ex.k == 40


def test_run_gemm_fused_relu(engine):
    rng = np.random.default_rng(1)
    a = rng.normal(size=(2, 8))
    b = rng.normal(size=(8, 16))
    out, _ = engine.run_gemm(a, b, activation="relu")
    np.testing.assert_allclose(out, np.maximum(a @ b, 0))


def test_run_gemm_fused_gelu(engine):
    from repro.moe.functional import gelu

    rng = np.random.default_rng(2)
    a = rng.normal(size=(2, 8))
    b = rng.normal(size=(8, 16))
    out, _ = engine.run_gemm(a, b, activation="gelu")
    np.testing.assert_allclose(out, gelu(a @ b))


def test_run_gemm_rejects_bad_shapes(engine):
    with pytest.raises(ValueError):
        engine.run_gemm(np.zeros((2, 3)), np.zeros((4, 5)))


def test_bad_bandwidth_rejected():
    with pytest.raises(ValueError):
        NDPGemmEngine(MONDE_DEVICE.ndp, 0)


def test_paper_fig7b_bandwidth_scaling():
    """Doubling device bandwidth (with rate-matched compute) roughly
    halves cold-expert latency -- the Fig. 7(b) mechanism."""
    base = NDPGemmEngine(MONDE_DEVICE.ndp, MONDE_DEVICE.effective_bandwidth)
    fast_spec = MONDE_DEVICE.scaled_bandwidth(2.0)
    fast = NDPGemmEngine(fast_spec.ndp, fast_spec.effective_bandwidth)
    t_base = base.expert_ffn_time(4, 2048, 8192)
    t_fast = fast.expert_ffn_time(4, 2048, 8192)
    speedup = t_base / t_fast
    assert 1.6 < speedup < 2.2


@settings(max_examples=20, deadline=None)
@given(m=st.integers(1, 16), n=st.integers(1, 512), k=st.integers(1, 256))
def test_functional_equals_matmul_property(m, n, k):
    engine = NDPGemmEngine(MONDE_DEVICE.ndp, MONDE_DEVICE.effective_bandwidth)
    rng = np.random.default_rng(m + 31 * n + 997 * k)
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    out, ex = engine.run_gemm(a, b)
    np.testing.assert_allclose(out, a @ b, rtol=1e-9)
    assert ex.pipelined_cycles >= ex.compute_cycles or ex.is_memory_bound
