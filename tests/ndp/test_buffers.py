"""On-chip buffer capacity tracking."""

import pytest

from repro.ndp.buffers import Buffer, DoubleBuffer


def test_allocate_and_free():
    buf = Buffer("b", 100)
    buf.allocate(60)
    assert buf.used_bytes == 60
    assert buf.free_bytes == 40
    buf.free(20)
    assert buf.used_bytes == 40


def test_overflow_raises():
    buf = Buffer("b", 100)
    buf.allocate(90)
    with pytest.raises(MemoryError):
        buf.allocate(11)


def test_peak_tracking():
    buf = Buffer("b", 100)
    buf.allocate(80)
    buf.free(50)
    buf.allocate(10)
    assert buf.peak_bytes == 80


def test_free_more_than_used_rejected():
    buf = Buffer("b", 100)
    buf.allocate(10)
    with pytest.raises(ValueError):
        buf.free(11)


def test_negative_allocation_rejected():
    with pytest.raises(ValueError):
        Buffer("b", 100).allocate(-1)


def test_fits_and_reset():
    buf = Buffer("b", 100)
    assert buf.fits(100)
    buf.allocate(100)
    assert not buf.fits(1)
    buf.reset()
    assert buf.fits(100)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Buffer("b", 0)


def test_double_buffer_halves_capacity():
    db = DoubleBuffer("exp", 88 * 1024)
    assert db.half_capacity == 44 * 1024
    assert db.fits_tile(44 * 1024)
    assert not db.fits_tile(44 * 1024 + 1)
    assert db.capacity_bytes == 88 * 1024
