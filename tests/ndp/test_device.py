"""MoNDE device: memory layout, bank partitioning, functional memory."""

import numpy as np
import pytest

from repro.dram.config import LPDDR5X_8533
from repro.ndp.device import DeviceMemoryLayout, MoNDEDevice


@pytest.fixture
def layout() -> DeviceMemoryLayout:
    return DeviceMemoryLayout()


@pytest.fixture
def device() -> MoNDEDevice:
    return MoNDEDevice()


def test_expert_allocations_land_in_even_banks(layout):
    """Section 3.4: parameters map to even-indexed banks."""
    alloc = layout.allocate(1 << 16, region="expert")
    for addr in layout.block_addresses(alloc):
        assert layout.mapper.decode(addr).bank % 2 == 0


def test_activation_allocations_land_in_odd_banks(layout):
    alloc = layout.allocate(1 << 16, region="activation")
    for addr in layout.block_addresses(alloc):
        assert layout.mapper.decode(addr).bank % 2 == 1


def test_block_addresses_unique_within_and_across(layout):
    a = layout.allocate(1 << 14, region="expert")
    b = layout.allocate(1 << 14, region="expert")
    addrs_a = layout.block_addresses(a)
    addrs_b = layout.block_addresses(b)
    assert len(set(addrs_a)) == len(addrs_a)
    assert set(addrs_a).isdisjoint(addrs_b)


def test_expert_and_activation_spaces_disjoint(layout):
    e = layout.allocate(1 << 14, region="expert")
    a = layout.allocate(1 << 14, region="activation")
    assert set(layout.block_addresses(e)).isdisjoint(layout.block_addresses(a))


def test_blocks_interleave_channels(layout):
    alloc = layout.allocate(64 * 8, region="expert")
    channels = [layout.mapper.decode(a).channel for a in layout.block_addresses(alloc)]
    assert sorted(channels) == list(range(8))


def test_bad_region_rejected(layout):
    with pytest.raises(ValueError):
        layout.allocate(64, region="weights")
    with pytest.raises(ValueError):
        layout.allocate(0, region="expert")


def test_store_and_read_tensor(device):
    x = np.arange(12.0).reshape(3, 4)
    alloc = device.store_tensor(x, region="activation")
    np.testing.assert_array_equal(device.read_tensor(alloc.addr), x)


def test_read_missing_tensor_raises(device):
    with pytest.raises(KeyError):
        device.read_tensor(0xDEAD)


def test_raw_memory_roundtrip(device):
    device.write_raw(0x40, b"\xaa" * 64)
    assert device.read_raw(0x40) == b"\xaa" * 64
    assert device.read_raw(0x80) is None


def test_capacity_accounting(device):
    device.allocate(1 << 20, region="expert")
    assert device.bytes_allocated == 1 << 20
    device.check_capacity()  # well under 512 GB


def test_engine_uses_effective_bandwidth(device):
    assert device.engine.mem_bandwidth == pytest.approx(
        device.spec.effective_bandwidth
    )


def test_layout_uses_paper_dram_config(layout):
    assert layout.dram_config is LPDDR5X_8533
