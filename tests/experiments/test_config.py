"""Experiment-config API: round-trips, validation, presets, bridge."""

import pytest

from repro.experiments import (
    CostConfig,
    ExperimentConfig,
    LoopConfig,
    PRESET_NAMES,
    ReplayConfig,
    ServingConfig,
    get_preset,
)


def test_round_trip_defaults(tmp_path):
    config = ExperimentConfig()
    path = tmp_path / "exp.json"
    config.save(path)
    assert ExperimentConfig.load(path) == config


@pytest.mark.parametrize("name", PRESET_NAMES)
def test_round_trip_presets(name, tmp_path):
    config = get_preset(name)
    assert ExperimentConfig.from_dict(config.to_dict()) == config
    path = tmp_path / f"{name}.json"
    config.save(path)
    assert ExperimentConfig.load(path) == config


def test_get_preset_unknown():
    with pytest.raises(ValueError, match="cluster_smoke"):
        get_preset("smokey")


def test_unknown_keys_rejected():
    with pytest.raises(ValueError, match="unknown ExperimentConfig keys"):
        ExperimentConfig.from_dict({"mode": "cosim", "turbo": True})
    with pytest.raises(ValueError, match="unknown LoopConfig keys"):
        ExperimentConfig.from_dict({"loop": {"dampening": 0.5}})
    with pytest.raises(ValueError, match="unknown ReplayConfig keys"):
        ReplayConfig.from_dict({"dram": "small", "channels": 4})


def test_validation_errors():
    with pytest.raises(ValueError, match="mode"):
        ExperimentConfig(mode="fleet")
    with pytest.raises(ValueError):
        ExperimentConfig(scheme="warp")
    with pytest.raises(ValueError, match="n_requests"):
        ExperimentConfig(n_requests=0)
    with pytest.raises(ValueError, match="rates"):
        ExperimentConfig(rates=())
    with pytest.raises(ValueError, match="sorted"):
        ExperimentConfig(rates=(2.0, 1.0))
    with pytest.raises(ValueError, match="together"):
        CostConfig(encode_us=1.0)
    with pytest.raises(ValueError, match="together"):
        CostConfig(decode_us=1.0)
    with pytest.raises(ValueError, match="dram"):
        ReplayConfig(dram="hbm3")
    with pytest.raises(ValueError, match="engine"):
        ServingConfig(engine="vllm")


def test_cost_synthetic_property():
    assert not CostConfig().synthetic
    assert CostConfig(encode_us=0.002, decode_us=0.02).synthetic


def test_cosim_config_bridge_defaults():
    """A default ExperimentConfig flattens to a default CosimConfig --
    the invariant keeping the config path bit-identical to the legacy
    flag path."""
    from repro.cosim import CosimConfig

    assert ExperimentConfig().cosim_config() == CosimConfig()


def test_cosim_config_bridge_routes_layers():
    config = ExperimentConfig(
        serving=ServingConfig(engine="batching", queue_limit=512, max_batch=4),
        loop=LoopConfig(damping=0.3, max_iterations=5, dram_workers=2),
    )
    bridge = config.cosim_config()
    assert bridge.engine == "batching"
    assert bridge.queue_limit == 512
    assert bridge.max_batch == 4
    assert bridge.damping == 0.3
    assert bridge.max_iterations == 5
    assert bridge.dram_workers == 2


def test_replaced_is_functional_update():
    base = get_preset("smoke")
    cluster_mode = base.replaced(mode="cluster")
    assert cluster_mode.mode == "cluster"
    assert base.mode == "cosim"
    assert cluster_mode.replay == base.replay


def test_preset_shapes():
    smoke = get_preset("smoke")
    assert smoke.mode == "cosim"
    assert smoke.cost.synthetic
    assert smoke.replay.dram == "small"
    decode_heavy = get_preset("decode_heavy")
    assert decode_heavy.serving.engine == "batching"
    cluster = get_preset("cluster_smoke")
    assert cluster.mode == "cluster"
    assert cluster.cluster.replicas == (1, 2)
    assert set(cluster.cluster.policies) <= {
        "replicated", "expert_parallel", "hot_cold"
    }
