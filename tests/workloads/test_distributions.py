"""Expert-load distributions: Fig. 3 calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import (
    FIG3_BUCKETS,
    FIG3_REFERENCE,
    bucket_histogram,
    hot_cold_split,
    mixture_popularity,
    sample_expert_counts,
    zipf_popularity,
)


def test_zipf_normalized():
    p = zipf_popularity(128, 1.5)
    assert p.sum() == pytest.approx(1.0)
    assert np.all(p > 0)


def test_zipf_zero_exponent_is_uniform():
    p = zipf_popularity(16, 0.0)
    np.testing.assert_allclose(p, 1 / 16)


def test_zipf_shuffle_permutes(rng=None):
    rng = np.random.default_rng(0)
    p = zipf_popularity(64, 2.0, rng)
    # After shuffling the hottest expert is (almost surely) not id 0.
    sorted_p = np.sort(p)[::-1]
    np.testing.assert_allclose(np.sort(zipf_popularity(64, 2.0))[::-1], sorted_p)


def test_zipf_validation():
    with pytest.raises(ValueError):
        zipf_popularity(0, 1.0)
    with pytest.raises(ValueError):
        zipf_popularity(8, -1.0)


def test_mixture_normalized():
    rng = np.random.default_rng(1)
    p = mixture_popularity(128, rng)
    assert p.sum() == pytest.approx(1.0)


def test_mixture_hot_fraction_respected():
    rng = np.random.default_rng(2)
    p = mixture_popularity(128, rng, hot_fraction=0.9, n_hot=2)
    top2 = np.sort(p)[::-1][:2]
    assert top2.sum() == pytest.approx(0.9)


def test_mixture_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        mixture_popularity(8, rng, hot_fraction=1.0)
    with pytest.raises(ValueError):
        mixture_popularity(8, rng, n_hot=9)
    with pytest.raises(ValueError):
        mixture_popularity(8, rng, tail_shape=0.0)


def test_sample_counts_conserves_events():
    rng = np.random.default_rng(3)
    counts = sample_expert_counts(128, 4096, 2.0, rng)
    assert counts.sum() == 4096
    assert counts.shape == (128,)


def test_sample_zero_events():
    rng = np.random.default_rng(0)
    counts = sample_expert_counts(16, 0, 1.0, rng)
    assert counts.sum() == 0


def test_bucket_histogram_edges():
    counts = np.array([0, 1, 3, 4, 7, 8, 100, 128, 5000])
    hist = bucket_histogram(counts)
    assert hist.sum() == len(counts)
    assert hist[0] == 1          # the zero
    assert hist[1] == 2          # 1, 3
    assert hist[2] == 2          # 4, 7
    assert hist[-1] == 2         # 128, 5000


def test_fig3_shape_reproduced():
    """The calibrated mixture reproduces Fig. 3's load-bearing shape:
    ~95% of experts cold (<8 tokens), a couple of hot experts at 128+."""
    hists = []
    for trial in range(10):
        rng = np.random.default_rng(trial)
        p = mixture_popularity(128, rng, hot_fraction=0.88, n_hot=2, tail_shape=0.55)
        hists.append(bucket_histogram(sample_expert_counts(128, 4096, 0, rng, popularity=p)))
    mean = np.mean(hists, axis=0)
    cold = mean[:3].sum()       # 0, 1-3, 4-7 buckets
    assert cold > 0.75 * 128
    assert 1 <= mean[-1] <= 4   # a couple of 128+ hot experts
    # Reference shares the same structure.
    ref = np.asarray(FIG3_REFERENCE)
    assert ref[:3].sum() > 0.9 * ref.sum()


def test_hot_cold_split():
    counts = np.array([0, 2, 9, 100])
    hot, cold = hot_cold_split(counts)
    assert hot == 2 and cold == 1


def test_fig3_reference_is_valid_distribution():
    assert len(FIG3_REFERENCE) == len(FIG3_BUCKETS) == 8
    assert sum(FIG3_REFERENCE) == pytest.approx(128, rel=0.02)


@settings(max_examples=25)
@given(
    n=st.integers(2, 64),
    events=st.integers(0, 2000),
    hot_fraction=st.floats(0.0, 0.99),
    seed=st.integers(0, 99),
)
def test_mixture_sampling_property(n, events, hot_fraction, seed):
    rng = np.random.default_rng(seed)
    p = mixture_popularity(n, rng, hot_fraction=hot_fraction, n_hot=1)
    counts = sample_expert_counts(n, events, 0, rng, popularity=p)
    assert counts.sum() == events
    assert np.all(counts >= 0)
