"""Structured trace corruption: detection, byte offsets, salvage.

The ways real crashes corrupt a ``.dramtrace`` -- lost tail, stale
header, flipped bit -- must surface as
:class:`~repro.workloads.trace_io.TraceCorruptionError` carrying the
byte offset and the salvageable record prefix, never as garbage stats
or a bare exception.  Corruption is injected with
:mod:`repro.faults.injectors`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.config import DRAMConfig, DRAMOrganization, LPDDR5X_8533
from repro.dram.controller import MemoryController
from repro.faults import bit_flip_trace, truncate_trace, zero_header_count
from repro.workloads.trace_io import (
    HEADER_BYTES,
    RECORD_BYTES,
    TraceCorruptionError,
    load_trace,
    write_trace,
)
from repro.workloads.traces import generate_trace_arrays

SMALL_ORG = DRAMOrganization(
    n_channels=2,
    n_ranks=1,
    n_bankgroups=2,
    banks_per_group=2,
    n_rows=128,
    row_bytes=512,
    access_bytes=64,
)
SMALL_CONFIG = DRAMConfig(organization=SMALL_ORG, timing=LPDDR5X_8533.timing)


def make_trace(path, n=200):
    addrs, arrive, flags = generate_trace_arrays(
        "random", n, config=SMALL_CONFIG, seed=7,
        arrival="poisson", arrival_gap=6.0,
    )
    write_trace(path, addrs, arrive, flags)
    return addrs, arrive, flags


def test_truncation_reports_salvageable_prefix(tmp_path):
    path = tmp_path / "t.dramtrace"
    addrs, _, _ = make_trace(path)
    truncate_trace(path, keep_records=80)
    with pytest.raises(TraceCorruptionError) as exc_info:
        load_trace(path)
    exc = exc_info.value
    assert exc.recoverable_records == 80
    assert "80 record(s) recoverable" in str(exc)
    recovered = load_trace(path, recover=True)
    assert len(recovered) == 80
    np.testing.assert_array_equal(np.asarray(recovered.addrs), addrs[:80])


def test_partial_record_tail_rounds_down(tmp_path):
    """A torn final record (non-integral tail) is not salvageable; the
    recoverable count covers whole records only."""
    path = tmp_path / "t.dramtrace"
    make_trace(path, n=10)
    size = path.stat().st_size
    with open(path, "rb+") as fh:
        fh.truncate(size - RECORD_BYTES - 5)  # 8 whole records + 12 bytes
    with pytest.raises(TraceCorruptionError) as exc_info:
        load_trace(path)
    assert exc_info.value.recoverable_records == 8
    assert len(load_trace(path, recover=True)) == 8


def test_truncated_to_nothing_is_unrecoverable(tmp_path):
    path = tmp_path / "t.dramtrace"
    make_trace(path)
    truncate_trace(path, keep_records=0)
    with pytest.raises(TraceCorruptionError):
        load_trace(path, recover=True)


def test_stale_header_reports_on_disk_records(tmp_path):
    """Crash-between-append-and-close: header says 0 but the records
    are there.  The mismatch is corruption, and everything on disk is
    recoverable."""
    path = tmp_path / "t.dramtrace"
    addrs, _, _ = make_trace(path, n=120)
    zero_header_count(path)
    with pytest.raises(TraceCorruptionError) as exc_info:
        load_trace(path)
    assert exc_info.value.recoverable_records == 120
    recovered = load_trace(path, recover=True)
    assert len(recovered) == 120
    np.testing.assert_array_equal(np.asarray(recovered.addrs), addrs)


def test_recover_does_not_mask_non_size_corruption(tmp_path):
    """recover=True only salvages size mismatches; a bad magic is
    still a hard error."""
    path = tmp_path / "t.dramtrace"
    make_trace(path, n=5)
    data = bytearray(path.read_bytes())
    data[:4] = b"NOPE"
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="bad magic"):
        load_trace(path, recover=True)


def test_corruption_error_is_value_error(tmp_path):
    """Existing except-ValueError callers keep working."""
    path = tmp_path / "t.dramtrace"
    make_trace(path)
    truncate_trace(path, keep_records=3)
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)
    assert issubclass(TraceCorruptionError, ValueError)


def test_streaming_detects_bit_flip_with_byte_offset(tmp_path):
    """A flipped high address bit must trip streaming validation with
    the byte offset of the bad chunk, not simulate garbage."""
    path = tmp_path / "t.dramtrace"
    make_trace(path, n=200)
    bit_flip_trace(path, record_index=100)
    controller = MemoryController(SMALL_CONFIG)
    with pytest.raises(TraceCorruptionError) as exc_info:
        controller.simulate_trace_streaming(path, window=64)
    exc = exc_info.value
    # The flip sits in the chunk [64, 128): everything before that
    # chunk is clean, and the offset points inside the file.
    assert exc.recoverable_records == 64
    assert exc.byte_offset == HEADER_BYTES + 64 * RECORD_BYTES


def test_streaming_detects_reserved_flag_bits(tmp_path):
    path = tmp_path / "t.dramtrace"
    make_trace(path, n=100)
    # Set a reserved flag bit (0x80) on record 30: flags byte is the
    # record's last byte.
    offset = HEADER_BYTES + 30 * RECORD_BYTES + (RECORD_BYTES - 1)
    with open(path, "rb+") as fh:
        fh.seek(offset)
        (value,) = fh.read(1)
        fh.seek(offset)
        fh.write(bytes((value | 0x80,)))
    controller = MemoryController(SMALL_CONFIG)
    with pytest.raises(TraceCorruptionError) as exc_info:
        controller.simulate_trace_streaming(path, window=25)
    exc = exc_info.value
    assert exc.byte_offset == HEADER_BYTES + 30 * RECORD_BYTES
    assert exc.recoverable_records == 25  # chunks before the bad one


def test_streaming_detects_file_shrinking_mid_stream(tmp_path):
    """A trace truncated underneath an mmapped streaming run (e.g. a
    concurrent regeneration gone wrong) must be caught at the next
    chunk boundary instead of faulting on stale pages."""
    path = tmp_path / "t.dramtrace"
    make_trace(path, n=200)
    trace = load_trace(path)
    chunks = trace.iter_chunks(50)
    next(chunks)  # first chunk streams fine
    with open(path, "rb+") as fh:
        fh.truncate(HEADER_BYTES + 60 * RECORD_BYTES)
    with pytest.raises(TraceCorruptionError) as exc_info:
        next(chunks)
    assert exc_info.value.recoverable_records == 50


def test_streaming_clean_trace_unaffected(tmp_path):
    """The corruption checks add no behavior change on healthy input:
    streaming still matches the array path bit for bit."""
    path = tmp_path / "t.dramtrace"
    addrs, arrive, flags = make_trace(path, n=300)
    from dataclasses import asdict

    expected = MemoryController(SMALL_CONFIG).simulate_arrays(addrs, arrive, flags)
    streamed = MemoryController(SMALL_CONFIG).simulate_trace_streaming(path, window=64)
    assert asdict(streamed) == asdict(expected)
