"""Routing-trace save/load."""

import json

import numpy as np
import pytest

from repro.moe import nllb_moe_128
from repro.workloads.serialization import FORMAT_VERSION, SavedTrace, capture_trace
from repro.workloads.traces import RoutingTraceGenerator


@pytest.fixture
def generator():
    return RoutingTraceGenerator(nllb_moe_128(), batch=2, seq_len=64, seed=5)


def test_capture_roundtrip(tmp_path, generator):
    trace = capture_trace(generator, n_decode_steps=3)
    path = tmp_path / "trace.json"
    trace.save(path)
    loaded = SavedTrace.load(path)
    assert loaded.model_name == "NLLB-MoE"
    assert len(loaded.encoder_layers) == len(trace.encoder_layers)
    for a, b in zip(loaded.encoder_layers, trace.encoder_layers):
        np.testing.assert_array_equal(a, b)
    assert len(loaded.decoder_steps) == 3
    for sa, sb in zip(loaded.decoder_steps, trace.decoder_steps):
        for a, b in zip(sa, sb):
            np.testing.assert_array_equal(a, b)


def test_capture_without_decode(generator):
    trace = capture_trace(generator)
    assert trace.decoder_steps == []
    assert len(trace.encoder_layers) == nllb_moe_128().n_moe_encoder_layers


def test_version_checked(tmp_path, generator):
    trace = capture_trace(generator)
    path = tmp_path / "trace.json"
    trace.save(path)
    data = json.loads(path.read_text())
    data["version"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        SavedTrace.load(path)


def test_validation_rejects_bad_shapes():
    trace = SavedTrace(
        model_name="x", n_experts=4, batch=1, seq_len=8,
        encoder_layers=[np.zeros(5, dtype=np.int64)],
    )
    with pytest.raises(ValueError):
        trace.validate()


def test_validation_rejects_negative_counts():
    trace = SavedTrace(
        model_name="x", n_experts=4, batch=1, seq_len=8,
        encoder_layers=[np.array([1, -1, 0, 0])],
    )
    with pytest.raises(ValueError):
        trace.validate()


def test_counts_drive_engine(generator):
    """A loaded trace feeds the timing engine unchanged."""
    from repro.core.engine import MoELayerEngine, Platform
    from repro.core.strategies import Scheme

    trace = capture_trace(generator)
    engine = MoELayerEngine(nllb_moe_128(), Platform())
    result = engine.layer_time(Scheme.MD_AM, trace.encoder_layers[0])
    assert result.seconds > 0


def test_version_error_message_is_clear(tmp_path, generator):
    trace = capture_trace(generator)
    path = tmp_path / "trace.json"
    trace.save(path)
    data = json.loads(path.read_text())
    data["version"] = 99
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="unsupported format version 99"):
        SavedTrace.load(path)


def test_shared_version_helper():
    """Both trace formats reject mismatches through one helper."""
    from repro.workloads.serialization import check_format_version

    check_format_version(FORMAT_VERSION, FORMAT_VERSION, "routing trace")
    with pytest.raises(ValueError, match="my format.*version 2.*reads version 1"):
        check_format_version(2, 1, "my format")
