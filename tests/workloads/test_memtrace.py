"""DRAM request-stream generators (streaming / random / MoE-skewed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.config import LPDDR5X_8533
from repro.dram.controller import MemoryController
from repro.dram.request import RequestKind
from repro.workloads.traces import (
    MEMORY_TRACES,
    moe_expert_memory_trace,
    random_memory_trace,
    streaming_memory_trace,
)

ACCESS = LPDDR5X_8533.organization.access_bytes
CAPACITY = LPDDR5X_8533.organization.total_capacity_bytes


def test_registry_names():
    assert set(MEMORY_TRACES) == {"streaming", "random", "moe-skewed"}


def test_streaming_is_contiguous():
    reqs = streaming_memory_trace(100)
    assert [r.addr for r in reqs] == [i * ACCESS for i in range(100)]
    assert all(r.kind is RequestKind.READ for r in reqs)


def test_streaming_wraps_at_capacity():
    reqs = streaming_memory_trace(4, base=CAPACITY - 2 * ACCESS)
    assert [r.addr for r in reqs] == [
        CAPACITY - 2 * ACCESS,
        CAPACITY - ACCESS,
        0,
        ACCESS,
    ]


def test_random_is_reproducible_and_in_range():
    a = random_memory_trace(200, seed=5)
    b = random_memory_trace(200, seed=5)
    assert [r.addr for r in a] == [r.addr for r in b]
    assert all(0 <= r.addr < CAPACITY and r.addr % ACCESS == 0 for r in a)
    kinds = {r.kind for r in a}
    assert kinds == {RequestKind.READ, RequestKind.WRITE}


def test_moe_trace_bursts_stay_in_expert_regions():
    n_experts, expert_bytes, burst = 8, 1 << 16, 16
    reqs = moe_expert_memory_trace(
        320, n_experts=n_experts, expert_bytes=expert_bytes, burst_blocks=burst, seed=2
    )
    assert len(reqs) == 320
    expert_blocks = expert_bytes // ACCESS
    for i in range(0, len(reqs), burst):
        burst_experts = {
            (r.addr // ACCESS) // expert_blocks for r in reqs[i : i + burst]
        }
        assert len(burst_experts) == 1  # one expert per burst
        assert all(r.kind is reqs[i].kind for r in reqs[i : i + burst])


def test_moe_trace_is_skewed():
    reqs = moe_expert_memory_trace(
        6400, n_experts=64, expert_bytes=1 << 16, burst_blocks=16, seed=3
    )
    expert_blocks = (1 << 16) // ACCESS
    experts = np.array([(r.addr // ACCESS) // expert_blocks for r in reqs])
    counts = np.bincount(experts, minlength=64)
    # The hot experts dominate: top-2 take well over half the traffic.
    assert np.sort(counts)[-2:].sum() > 0.5 * counts.sum()


def test_moe_trace_fits_tiny_configs():
    # Regions shrink to the device; no address may exceed capacity
    # even when a burst is longer than the per-expert region.
    from repro.dram.config import DRAMConfig, DRAMOrganization

    tiny = DRAMConfig(
        organization=DRAMOrganization(
            n_channels=1, n_ranks=1, n_bankgroups=2, banks_per_group=2,
            n_rows=4, row_bytes=128, access_bytes=64,
        ),
        timing=LPDDR5X_8533.timing,
    )
    cap = tiny.organization.total_capacity_bytes
    reqs = moe_expert_memory_trace(
        200, config=tiny, n_experts=16, burst_blocks=32, seed=0
    )
    assert all(0 <= r.addr < cap for r in reqs)
    MemoryController(tiny).simulate(reqs)  # must not raise
    with pytest.raises(ValueError, match="experts cannot fit"):
        moe_expert_memory_trace(10, config=tiny, n_experts=1 << 20)


def test_moe_trace_truncates_to_n_requests():
    reqs = moe_expert_memory_trace(100, burst_blocks=32, seed=1)
    assert len(reqs) == 100


@pytest.mark.parametrize("name", sorted(MEMORY_TRACES))
def test_traces_simulate_cleanly(name):
    reqs = MEMORY_TRACES[name](400, seed=9)
    stats = MemoryController(LPDDR5X_8533).simulate(reqs)
    assert stats.requests == 400
    assert all(r.complete_cycle is not None for r in reqs)


def test_streaming_hit_rate_beats_random():
    ctrl_s = MemoryController(LPDDR5X_8533)
    ctrl_r = MemoryController(LPDDR5X_8533)
    s = ctrl_s.simulate(streaming_memory_trace(2000))
    r = ctrl_r.simulate(random_memory_trace(2000, seed=4))
    assert s.row_hit_rate > 0.9 > r.row_hit_rate
