"""Routing trace generation: depth skew and temporal persistence."""

import numpy as np
import pytest

from repro.moe import nllb_moe_128
from repro.moe.zoo import t5_large_dense
from repro.workloads.traces import RoutingProfile, RoutingTraceGenerator


@pytest.fixture(scope="module")
def gen():
    return RoutingTraceGenerator(nllb_moe_128(), batch=4, seq_len=512, seed=7)


def test_encoder_counts_conserve_events(gen):
    counts = gen.encoder_layer_counts(0)
    assert counts.sum() == 4 * 512 * 2  # B*S*top_k
    assert counts.shape == (128,)


def test_decoder_counts_conserve_events(gen):
    counts = gen.decoder_step_counts(0, step=0)
    assert counts.sum() == 4 * 2  # B*top_k


def test_encoder_trace_length(gen):
    trace = gen.encoder_trace()
    assert len(trace) == nllb_moe_128().n_moe_encoder_layers


def test_decoder_trace_shape(gen):
    trace = gen.decoder_trace(5)
    assert len(trace) == 5
    assert len(trace[0]) == nllb_moe_128().n_moe_decoder_layers


def test_deeper_layers_are_sparser(gen):
    """Depth-dependent skew: deeper MoE layers activate fewer experts."""
    trace = gen.encoder_trace()
    first = np.count_nonzero(trace[0])
    last = np.count_nonzero(trace[-1])
    assert last < first


def test_layer0_activates_most_experts(gen):
    """Fig. 3: encoder layer 0 activates ~100 of 128 experts."""
    active = np.count_nonzero(gen.encoder_layer_counts(0))
    assert active > 60


def test_decoder_step_counts_deterministic(gen):
    a = gen.decoder_step_counts(2, step=3)
    b = gen.decoder_step_counts(2, step=3)
    np.testing.assert_array_equal(a, b)


def test_decoder_popularity_persistent_across_steps(gen):
    """The hot expert of a decoder layer recurs across steps -- the
    property that makes the GPU expert buffer effective."""
    hot_sets = []
    for step in range(8):
        counts = gen.decoder_step_counts(0, step)
        hot_sets.append(set(np.argsort(-counts)[:1].tolist()))
    # The single hottest expert is the same in most steps.
    most_common = max(set.union(*hot_sets), key=lambda e: sum(e in s for s in hot_sets))
    recurrence = sum(most_common in s for s in hot_sets)
    assert recurrence >= 5


def test_different_seeds_differ():
    a = RoutingTraceGenerator(nllb_moe_128(), 4, 512, seed=0).encoder_layer_counts(0)
    b = RoutingTraceGenerator(nllb_moe_128(), 4, 512, seed=1).encoder_layer_counts(0)
    assert not np.array_equal(a, b)


def test_profile_ramp():
    profile = RoutingProfile(hot_fraction_first=0.8, hot_fraction_last=0.9)
    assert profile._ramp(0.8, 0.9, 0, 10) == pytest.approx(0.8)
    assert profile._ramp(0.8, 0.9, 9, 10) == pytest.approx(0.9)
    assert profile._ramp(0.8, 0.9, 0, 1) == pytest.approx(0.9)


def test_decoder_floor_applies():
    profile = RoutingProfile(
        hot_fraction_first=0.5, hot_fraction_last=0.6, decoder_min_hot_fraction=0.95
    )
    rng = np.random.default_rng(0)
    p = profile.popularity(64, 0, 4, decoder=True, rng=rng)
    top2 = np.sort(p)[::-1][:2]
    assert top2.sum() >= 0.94


def test_dense_model_rejected():
    with pytest.raises(ValueError):
        RoutingTraceGenerator(t5_large_dense(), 4, 512)


def test_geometry_validated():
    with pytest.raises(ValueError):
        RoutingTraceGenerator(nllb_moe_128(), 0, 512)
    gen = RoutingTraceGenerator(nllb_moe_128(), 1, 8)
    with pytest.raises(ValueError):
        gen.decoder_trace(0)
