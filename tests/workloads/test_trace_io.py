"""Binary ``.dramtrace`` format: round trips, corners, corruption."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.trace_io import (
    HEADER_BYTES,
    RECORD_BYTES,
    TRACE_MAGIC,
    TraceWriter,
    flags_priority,
    flags_write_mask,
    generate_trace_file,
    load_trace,
    pack_flags,
    read_header,
    write_trace,
)


def test_record_layout_is_packed():
    # The on-disk contract: 17-byte records, 20-byte header.
    assert RECORD_BYTES == 17
    assert HEADER_BYTES == 20


def test_roundtrip(tmp_path):
    path = tmp_path / "t.dramtrace"
    addrs = np.array([0, 64, 128, 1 << 38], dtype=np.int64)
    arrive = np.array([0, 3, 3, 90], dtype=np.int64)
    flags = pack_flags([False, True, False, True], priority=[0, 7, 2, 0])
    assert write_trace(path, addrs, arrive, flags) == 4
    assert path.stat().st_size == HEADER_BYTES + 4 * RECORD_BYTES
    trace = load_trace(path)
    assert len(trace) == 4
    np.testing.assert_array_equal(np.asarray(trace.addrs), addrs)
    np.testing.assert_array_equal(np.asarray(trace.arrive_cycles), arrive)
    np.testing.assert_array_equal(np.asarray(trace.flags), flags)
    np.testing.assert_array_equal(trace.write_mask, [False, True, False, True])
    np.testing.assert_array_equal(trace.priorities, [0, 7, 2, 0])


def test_roundtrip_beyond_2_31_addresses(tmp_path):
    # int64 end to end: addresses past 2^31 *and* past 2^32.
    path = tmp_path / "big.dramtrace"
    addrs = np.array([(1 << 31) + 64, (1 << 32) + 128, (1 << 45)], dtype=np.int64)
    write_trace(path, addrs)
    loaded = np.asarray(load_trace(path).addrs)
    np.testing.assert_array_equal(loaded, addrs)
    assert loaded.dtype == np.int64


def test_roundtrip_empty(tmp_path):
    path = tmp_path / "empty.dramtrace"
    assert write_trace(path, np.array([], dtype=np.int64)) == 0
    assert path.stat().st_size == HEADER_BYTES
    trace = load_trace(path)
    assert len(trace) == 0
    assert trace.addrs.shape == (0,)
    assert list(trace.iter_chunks(16)) == []


def test_mmap_is_lazy_and_readonly(tmp_path):
    path = tmp_path / "t.dramtrace"
    write_trace(path, np.arange(10, dtype=np.int64) * 64)
    trace = load_trace(path)
    assert isinstance(trace.records, np.memmap)
    with pytest.raises(ValueError):
        trace.records["addr"][0] = 1
    in_memory = load_trace(path, mmap=False)
    assert not isinstance(in_memory.records, np.memmap)
    np.testing.assert_array_equal(np.asarray(in_memory.addrs), np.asarray(trace.addrs))


def test_writer_chunked_appends_equal_one_shot(tmp_path):
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 1 << 39, size=1000, dtype=np.int64) & ~np.int64(63)
    arrive = np.sort(rng.integers(0, 10_000, size=1000, dtype=np.int64))
    flags = pack_flags(rng.random(1000) < 0.3)
    one_shot = tmp_path / "one.dramtrace"
    chunked = tmp_path / "chunks.dramtrace"
    write_trace(one_shot, addrs, arrive, flags)
    with TraceWriter(chunked) as writer:
        for lo in range(0, 1000, 137):
            hi = lo + 137
            writer.append(addrs[lo:hi], arrive[lo:hi], flags[lo:hi])
    assert one_shot.read_bytes() == chunked.read_bytes()


def test_iter_chunks_covers_everything(tmp_path):
    path = tmp_path / "t.dramtrace"
    addrs = np.arange(257, dtype=np.int64) * 64
    arrive = np.arange(257, dtype=np.int64)
    write_trace(path, addrs, arrive)
    chunks = list(load_trace(path).iter_chunks(100))
    assert [len(c[0]) for c in chunks] == [100, 100, 57]
    np.testing.assert_array_equal(np.concatenate([c[0] for c in chunks]), addrs)
    np.testing.assert_array_equal(np.concatenate([c[1] for c in chunks]), arrive)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "t.dramtrace"
    write_trace(path, np.arange(8, dtype=np.int64) * 64)
    data = path.read_bytes()
    path.write_bytes(data[:-5])
    with pytest.raises(ValueError, match="truncated"):
        load_trace(path)
    # Shorter than the header itself.
    path.write_bytes(data[:7])
    with pytest.raises(ValueError, match="truncated"):
        read_header(path)
    # Trailing garbage is just as corrupt as missing bytes.
    path.write_bytes(data + b"\x00" * 3)
    with pytest.raises(ValueError, match="truncated or oversized"):
        load_trace(path)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "t.dramtrace"
    write_trace(path, np.array([64], dtype=np.int64))
    data = bytearray(path.read_bytes())
    data[:4] = b"NOPE"
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="bad magic"):
        load_trace(path)


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "t.dramtrace"
    write_trace(path, np.array([64], dtype=np.int64))
    data = bytearray(path.read_bytes())
    assert data[: len(TRACE_MAGIC)] == TRACE_MAGIC
    data[8] = 99  # little-endian uint16 version field
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="unsupported format version 99"):
        load_trace(path)


def test_column_length_mismatch_rejected(tmp_path):
    with pytest.raises(ValueError, match="column length mismatch"):
        write_trace(tmp_path / "t.dramtrace", [0, 64], [0])


def test_reserved_flag_bits_rejected(tmp_path):
    with pytest.raises(ValueError, match="reserved bits"):
        write_trace(
            tmp_path / "t.dramtrace", [0], flags=np.array([0x10], dtype=np.uint8)
        )


def test_pack_flags_bounds():
    with pytest.raises(ValueError, match="priority"):
        pack_flags([True], priority=8)
    flags = pack_flags([True, False], priority=5)
    np.testing.assert_array_equal(flags_write_mask(flags), [True, False])
    np.testing.assert_array_equal(flags_priority(flags), [5, 5])


def test_generate_trace_file_matches_generator(tmp_path):
    from repro.workloads.traces import generate_trace_arrays

    path = tmp_path / "moe.dramtrace"
    n = generate_trace_file(
        path,
        "moe-skewed",
        500,
        seed=11,
        arrival="batched",
        arrival_gap=6.0,
        chunk_requests=64,
    )
    assert n == 500
    addrs, arrive, flags = generate_trace_arrays(
        "moe-skewed", 500, seed=11, arrival="batched", arrival_gap=6.0
    )
    trace = load_trace(path)
    np.testing.assert_array_equal(np.asarray(trace.addrs), addrs)
    np.testing.assert_array_equal(np.asarray(trace.arrive_cycles), arrive)
    np.testing.assert_array_equal(np.asarray(trace.flags), flags)


def test_generate_trace_file_unknown_pattern(tmp_path):
    with pytest.raises(ValueError, match="unknown pattern"):
        generate_trace_file(tmp_path / "x.dramtrace", "nope", 10)


def test_aborted_writer_leaves_no_file(tmp_path):
    """A generation that raises mid-write must not leave a readable
    (partial or spuriously empty) trace behind.  The writer stages to
    a sibling tmp file and only publishes on close, so an abort leaves
    *nothing* under the real name -- and no tmp straggler either."""
    path = tmp_path / "partial.dramtrace"
    with pytest.raises(RuntimeError, match="boom"):
        with TraceWriter(path) as writer:
            writer.append(np.arange(10, dtype=np.int64) * 64)
            raise RuntimeError("boom")
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []
    # Same when nothing was appended before the failure.
    empty = tmp_path / "aborted_empty.dramtrace"
    with pytest.raises(RuntimeError):
        with TraceWriter(empty):
            raise RuntimeError("boom")
    assert not empty.exists()
    assert list(tmp_path.iterdir()) == []


def test_aborted_writer_preserves_previous_trace(tmp_path):
    """Atomic publication: a failed regeneration leaves the previous
    complete trace untouched under the same name."""
    path = tmp_path / "t.dramtrace"
    old = np.arange(5, dtype=np.int64) * 64
    write_trace(path, old)
    with pytest.raises(RuntimeError, match="boom"):
        with TraceWriter(path) as writer:
            writer.append(np.arange(50, dtype=np.int64) * 64)
            raise RuntimeError("boom")
    trace = load_trace(path)
    np.testing.assert_array_equal(np.asarray(trace.addrs), old)


def test_closed_writer_rejects_append(tmp_path):
    writer = TraceWriter(tmp_path / "t.dramtrace")
    writer.close()
    with pytest.raises(ValueError, match="closed"):
        writer.append(np.array([64], dtype=np.int64))
