"""Named model workloads (Table 2)."""

from repro.workloads.catalog import WORKLOADS, flores_like, xsum_like


def test_xsum_uses_switch_large():
    sc = xsum_like()
    assert sc.model.name == "Switch-Large-128"
    assert sc.model.top_k == 1  # Table 2: top-1 gating
    assert sc.seq_len == 512


def test_flores_uses_nllb():
    sc = flores_like()
    assert sc.model.name == "NLLB-MoE"
    assert sc.model.top_k == 2  # Table 2: top-2 gating


def test_decoder_stickiness_ordering():
    """LM routing is stickier than translation routing (the Fig. 6
    decoder asymmetry)."""
    assert (
        xsum_like().profile.decoder_min_hot_fraction
        > flores_like().profile.decoder_min_hot_fraction
    )


def test_batch_parameterization():
    sc = flores_like(batch=16)
    assert sc.batch == 16
    assert "16" in sc.name


def test_describe():
    text = xsum_like().describe()
    assert "Switch-Large-128" in text and "B=4" in text


def test_workload_catalog():
    assert set(WORKLOADS) == {"xsum", "flores"}
    for fn in WORKLOADS.values():
        assert fn().model.is_moe
