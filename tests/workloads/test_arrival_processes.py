"""Arrival-process generators for open-loop memory traces."""

import numpy as np
import pytest

from repro.dram.request import RequestKind
from repro.workloads.traces import (
    ARRIVAL_PROCESSES,
    apply_arrivals,
    batched_arrival_cycles,
    onoff_arrival_cycles,
    poisson_arrival_cycles,
    streaming_memory_trace,
)


def test_poisson_sorted_seeded_offset():
    a = poisson_arrival_cycles(500, 10.0, seed=3)
    b = poisson_arrival_cycles(500, 10.0, seed=3)
    c = poisson_arrival_cycles(500, 10.0, seed=4)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert np.all(np.diff(a) >= 0)
    shifted = poisson_arrival_cycles(500, 10.0, seed=3, start_cycle=1000)
    assert np.array_equal(shifted, a + 1000)
    # Mean gap roughly matches the request.
    assert a[-1] / 500 == pytest.approx(10.0, rel=0.3)


def test_batched_shape():
    cycles = batched_arrival_cycles(10, batch_size=4, batch_gap_cycles=100)
    assert cycles.tolist() == [0, 0, 0, 0, 100, 100, 100, 100, 200, 200]
    offset = batched_arrival_cycles(4, batch_size=2, batch_gap_cycles=10, start_cycle=7)
    assert offset.tolist() == [7, 7, 17, 17]


def test_onoff_respects_silence_windows():
    on, off = 100, 900
    cycles = onoff_arrival_cycles(400, 5.0, on_cycles=on, off_cycles=off, seed=1)
    assert np.all(np.diff(cycles) >= 0)
    # Every arrival falls inside an on-period of the duty cycle.
    phase = cycles % (on + off)
    assert np.all(phase < on)


def test_generator_validation():
    with pytest.raises(ValueError):
        poisson_arrival_cycles(10, 0.0)
    with pytest.raises(ValueError):
        batched_arrival_cycles(10, batch_size=0, batch_gap_cycles=5)
    with pytest.raises(ValueError):
        onoff_arrival_cycles(10, 5.0, on_cycles=0, off_cycles=10)


def test_apply_arrivals_stamps_requests():
    reqs = streaming_memory_trace(16)
    cycles = poisson_arrival_cycles(16, 8.0, seed=2)
    out = apply_arrivals(reqs, cycles)
    assert out is reqs
    assert [r.arrive_cycle for r in reqs] == cycles.tolist()
    assert all(r.kind is RequestKind.READ for r in reqs)
    with pytest.raises(ValueError):
        apply_arrivals(reqs, cycles[:-1])


@pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
def test_named_processes_unified_signature(name):
    cycles = ARRIVAL_PROCESSES[name](200, 8.0, seed=5, start_cycle=50)
    assert len(cycles) == 200
    assert np.all(np.diff(cycles) >= 0)
    assert cycles[0] >= 50


@pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
def test_named_processes_reject_nonpositive_gap(name):
    with pytest.raises(ValueError, match="positive"):
        ARRIVAL_PROCESSES[name](10, 0.0)
