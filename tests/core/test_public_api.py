"""Public API surface: lazy exports and package metadata."""

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_lazy_top_level_exports():
    from repro.core.runtime import InferenceConfig as Direct

    assert repro.InferenceConfig is Direct
    assert repro.MoNDERuntime.__name__ == "MoNDERuntime"
    assert repro.Scheme.MD_LB.value == "md+lb"
    assert repro.SchemeResult.__name__ == "SchemeResult"


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.does_not_exist


def test_core_lazy_exports():
    import repro.core as core

    assert core.NDPInstruction.__name__ == "NDPInstruction"
    assert core.AnalyticalModel.__name__ == "AnalyticalModel"
    with pytest.raises(AttributeError):
        core.nope


def test_all_declared_exports_resolve():
    import repro.core as core

    for name in core.__all__:
        assert getattr(core, name) is not None
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_subpackage_init_exports_resolve():
    import repro.analysis
    import repro.dram
    import repro.hw
    import repro.moe
    import repro.ndp
    import repro.serving
    import repro.sim
    import repro.workloads

    for pkg in (
        repro.analysis, repro.dram, repro.hw, repro.moe,
        repro.ndp, repro.serving, repro.sim, repro.workloads,
    ):
        for name in pkg.__all__:
            assert getattr(pkg, name) is not None, (pkg.__name__, name)
