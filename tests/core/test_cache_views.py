"""Cache views used by the alpha auto-tuner."""

import numpy as np

from repro.core.cache import ExpertCache, ReadOnlyCacheView, SteadyStateCacheView


def test_readonly_view_does_not_mutate():
    cache = ExpertCache(4 * 100, 100)
    cache.access(0, np.array([1]))
    view = ReadOnlyCacheView(cache)
    hits, misses = view.access(0, np.array([1, 2]))
    assert (hits, misses) == (1, 1)
    # The miss was not installed.
    assert (0, 2) not in cache
    assert cache.hits == 0 or cache.hits == cache.hits  # counters untouched by view
    assert cache.misses == 1  # only the original access


def test_steady_state_first_sight_is_miss():
    view = SteadyStateCacheView(capacity_slots=8)
    view.note(0, np.array([3]))
    hits, misses = view.access(0, np.array([3]))
    assert (hits, misses) == (0, 1)


def test_steady_state_recurring_becomes_hit():
    view = SteadyStateCacheView(capacity_slots=8)
    view.note(0, np.array([3]))
    view.note(0, np.array([3]))
    hits, misses = view.access(0, np.array([3]))
    assert (hits, misses) == (1, 0)


def test_steady_state_thrashing_working_set_misses():
    """When the recurring working set exceeds capacity, LRU thrashes
    and the predictor reports misses (encoder regime)."""
    view = SteadyStateCacheView(capacity_slots=4)
    for layer in range(3):
        for _ in range(2):
            view.note(layer, np.arange(4))  # 12 distinct keys > 4 slots
    assert not view.working_set_fits
    hits, misses = view.access(0, np.arange(4))
    assert hits == 0 and misses == 4


def test_steady_state_layers_distinct():
    view = SteadyStateCacheView(capacity_slots=8)
    view.note(0, np.array([5]))
    view.note(0, np.array([5]))
    hits, misses = view.access(1, np.array([5]))
    assert (hits, misses) == (0, 1)
