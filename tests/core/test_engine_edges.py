"""Layer engine edge cases and internal consistency."""

import numpy as np
import pytest

from repro.core.engine import MoELayerEngine, Overheads, Platform
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128, switch_large_128
from tests.conftest import make_counts


@pytest.fixture(scope="module")
def engine():
    return MoELayerEngine(nllb_moe_128(), Platform())


def test_single_active_expert_all_schemes(engine):
    counts = make_counts(128, {42: 7})
    for scheme in (Scheme.IDEAL, Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB,
                   Scheme.CPU_AM):
        result = engine.layer_time(scheme, counts)
        assert result.seconds > 0
        assert result.n_active == 1


def test_all_experts_active(engine):
    counts = np.ones(128, dtype=np.int64)
    pm = engine.layer_time(Scheme.GPU_PM, counts)
    assert pm.n_active == 128
    assert pm.pmove_bytes == 128 * engine.pmove.expert_bytes


def test_layer_time_independent_of_history(engine):
    """Without a cache, layer_time is a pure function of counts."""
    counts = make_counts(128, {0: 100, 5: 3})
    first = engine.layer_time(Scheme.MD_LB, counts).seconds
    for _ in range(3):
        engine.layer_time(Scheme.GPU_PM, make_counts(128, {9: 50}))
    second = engine.layer_time(Scheme.MD_LB, counts).seconds
    assert first == second


def test_n_tokens_override_affects_gating(engine):
    counts = make_counts(128, {0: 8})
    small = engine.layer_time(Scheme.IDEAL, counts, n_tokens=4).seconds
    large = engine.layer_time(Scheme.IDEAL, counts, n_tokens=65536).seconds
    assert large > small


def test_alpha_monotone_h(engine):
    counts = make_counts(128, {e: 10 for e in range(60)})
    hs = [
        engine.layer_time(Scheme.MD_LB, counts, alpha=a).h
        for a in (0.5, 1.0, 2.0, 4.0)
    ]
    assert hs == sorted(hs)
    assert hs[-1] > hs[0]


def test_overheads_additive(engine):
    """Doubling the fixed framework overhead adds exactly the delta."""
    counts = make_counts(128, {0: 4})
    base = engine.layer_time(Scheme.IDEAL, counts).seconds
    heavy_platform = Platform(overheads=Overheads(moe_fixed=600e-6))
    heavy = MoELayerEngine(nllb_moe_128(), heavy_platform)
    delta = heavy.layer_time(Scheme.IDEAL, counts).seconds - base
    assert delta == pytest.approx(600e-6 - 300e-6, rel=0.01)


def test_smaller_model_is_faster():
    counts = make_counts(128, {e: 4 for e in range(30)})
    big = MoELayerEngine(nllb_moe_128(), Platform())
    small = MoELayerEngine(switch_large_128(), Platform())
    for scheme in (Scheme.GPU_PM, Scheme.MD_AM):
        assert (
            small.layer_time(scheme, counts).seconds
            < big.layer_time(scheme, counts).seconds
        )


def test_timeline_streams_disjoint_per_scheme(engine):
    counts = make_counts(128, {0: 100, 1: 3})
    ideal = engine.layer_time(Scheme.IDEAL, counts)
    assert not ideal.timeline.stream("cpu").segments
    assert not ideal.timeline.stream("monde").segments
    cpu = engine.layer_time(Scheme.CPU_AM, counts)
    assert not cpu.timeline.stream("monde").segments
    am = engine.layer_time(Scheme.MD_AM, counts)
    assert not am.timeline.stream("cpu").segments


def test_makespan_equals_reported_seconds(engine):
    counts = make_counts(128, {0: 500, **{e: 2 for e in range(10, 30)}})
    for scheme in (Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB, Scheme.CPU_AM):
        result = engine.layer_time(scheme, counts)
        assert result.seconds == pytest.approx(result.timeline.makespan(), rel=1e-9)
