"""Functional multi-MoNDE cluster."""

import numpy as np
import pytest

from repro.core.cluster import MoNDECluster

D, FF = 32, 64


@pytest.fixture
def experts(rng):
    return {
        e: (rng.normal(size=(D, FF)), rng.normal(size=(FF, D))) for e in range(6)
    }


@pytest.fixture
def rng():
    return np.random.default_rng(17)


def test_round_robin_placement_balanced(experts):
    cluster = MoNDECluster(n_devices=3)
    cluster.load_experts(experts)
    assert cluster.expert_count_per_device() == [2, 2, 2]


def test_intensity_ordering_places_hot_apart(experts):
    """The two most intense experts land on different devices."""
    cluster = MoNDECluster(n_devices=2)
    intensities = {0: 100.0, 1: 90.0, 2: 1.0, 3: 1.0, 4: 1.0, 5: 1.0}
    cluster.load_experts(experts, intensities=intensities)
    assert cluster.placement(0).device_id != cluster.placement(1).device_id


def test_layer_outputs_match_reference(experts, rng):
    cluster = MoNDECluster(n_devices=2)
    cluster.load_experts(experts)
    groups = {e: rng.normal(size=(3, D)) for e in (0, 2, 5)}
    outputs, seconds = cluster.run_moe_layer(groups)
    assert seconds > 0
    for e, tokens in groups.items():
        w1, w2 = experts[e]
        np.testing.assert_allclose(outputs[e], np.maximum(tokens @ w1, 0) @ w2)


def test_cluster_time_is_max_over_devices(experts, rng):
    one = MoNDECluster(n_devices=1)
    one.load_experts(experts)
    many = MoNDECluster(n_devices=6)
    many.load_experts(experts)
    groups = {e: rng.normal(size=(2, D)) for e in range(6)}
    _, t_one = one.run_moe_layer(groups)
    _, t_many = many.run_moe_layer(groups)
    assert t_many < t_one


def test_unplaced_expert_rejected(experts, rng):
    cluster = MoNDECluster(n_devices=2)
    cluster.load_experts({0: experts[0]})
    with pytest.raises(KeyError):
        cluster.run_moe_layer({1: rng.normal(size=(1, D))})
    with pytest.raises(KeyError):
        cluster.placement(9)


def test_validation():
    with pytest.raises(ValueError):
        MoNDECluster(n_devices=0)


def test_empty_layer(experts):
    cluster = MoNDECluster(n_devices=2)
    cluster.load_experts(experts)
    outputs, seconds = cluster.run_moe_layer({})
    assert outputs == {} and seconds == 0.0
