"""Equations 1-6 of the paper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.analytical import (
    AnalyticalModel,
    amove_bytes,
    amove_elements,
    pmove_bytes,
    pmove_elements,
)


def test_eq1_pmove():
    assert pmove_elements(128, 2048, 8192) == 2 * 128 * 2048 * 8192
    assert pmove_bytes(128, 2048, 8192) == 2 * 128 * 2048 * 8192 * 2


def test_eq2_amove():
    assert amove_elements(4, 512, 2048) == 2 * 4 * 512 * 2048
    assert amove_bytes(4, 512, 2048) == 2 * 4 * 512 * 2048 * 2


def test_pmove_dwarfs_amove_for_small_batches():
    """The Fig. 2(b) gap: PMove is O(E * d * d_ff), AMove O(B * S * d)."""
    ratio = pmove_bytes(128, 2048, 8192) / amove_bytes(4, 512, 2048)
    assert ratio > 500


def test_eq4_latency_terms():
    model = AnalyticalModel(bw_pcie=25.6e9, bw_md=512e9)
    assert model.t_pm(25.6e9) == pytest.approx(1.0)
    assert model.t_md(512e9) == pytest.approx(1.0)


def test_eq6_h_value():
    model = AnalyticalModel(bw_pcie=25.6e9, bw_md=512e9)
    share = 25.6 / (512 + 25.6)
    assert model.gpu_share == pytest.approx(share)
    assert model.h_value(100) == round(share * 100)
    assert model.h_value(100, alpha=2.0) == round(2 * share * 100)


def test_h_clamped_to_active():
    model = AnalyticalModel(bw_pcie=1e9, bw_md=1e9)
    assert model.h_value(10, alpha=100.0) == 10
    assert model.h_value(0) == 0


def test_h_validation():
    model = AnalyticalModel(bw_pcie=1e9, bw_md=1e9)
    with pytest.raises(ValueError):
        model.h_value(-1)
    with pytest.raises(ValueError):
        model.h_value(10, alpha=-0.1)
    with pytest.raises(ValueError):
        AnalyticalModel(bw_pcie=0, bw_md=1)


def test_workflow_times_eq3():
    model = AnalyticalModel(bw_pcie=10e9, bw_md=100e9)
    wf = model.workflow_times(
        expert_gpu_bytes=10e9, expert_md_bytes=100e9, t_gpu=0.1, t_am=0.2
    )
    assert wf.t_gwf == pytest.approx(1.0 + 0.1)
    assert wf.t_mdwf == pytest.approx(1.0 + 0.2)
    assert wf.balanced == pytest.approx(1.2)


@given(
    n_active=st.integers(0, 128),
    bw_pcie=st.floats(1e9, 100e9),
    bw_md=st.floats(1e9, 2e12),
    alpha=st.floats(0.0, 5.0),
)
def test_h_bounds_property(n_active, bw_pcie, bw_md, alpha):
    model = AnalyticalModel(bw_pcie, bw_md)
    h = model.h_value(n_active, alpha)
    assert 0 <= h <= n_active


def test_h_balances_eq4_terms():
    """At alpha=1 the H split roughly equalizes t_PM and t_MD when
    experts are equal-sized (the derivation of Eq. 6)."""
    model = AnalyticalModel(bw_pcie=25.6e9, bw_md=512e9)
    n_active = 100
    expert_bytes = 64e6
    h = model.h_value(n_active)
    t_pm = model.t_pm(h * expert_bytes)
    t_md = model.t_md((n_active - h) * expert_bytes)
    assert t_pm == pytest.approx(t_md, rel=0.25)
