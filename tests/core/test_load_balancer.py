"""GPU-MoNDE load balancer and the alpha auto-tuner (Section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.load_balancer import (
    AlphaAutoTuner,
    LoadBalancer,
    round_robin_by_intensity,
)


@pytest.fixture
def balancer() -> LoadBalancer:
    return LoadBalancer(bw_pcie=25.6e9, bw_md=476e9)


def test_hot_experts_go_to_gpu(balancer):
    counts = np.zeros(128, dtype=int)
    counts[5] = 1000   # hottest
    counts[9] = 500
    for e in range(20, 60):
        counts[e] = 2
    part = balancer.partition(counts)
    assert part.h >= 1
    assert part.hot_experts[0] == 5
    if part.h >= 2:
        assert part.hot_experts[1] == 9
    assert 5 not in part.cold_experts


def test_partition_covers_active_exactly(balancer):
    rng = np.random.default_rng(0)
    counts = rng.integers(0, 10, size=128)
    part = balancer.partition(counts)
    combined = np.concatenate([part.hot_experts, part.cold_experts])
    np.testing.assert_array_equal(np.sort(combined), np.flatnonzero(counts > 0))
    assert part.n_active == int((counts > 0).sum())


def test_alpha_scales_h(balancer):
    counts = np.zeros(128, dtype=int)
    counts[:100] = 5
    h1 = balancer.partition(counts, alpha=1.0).h
    h2 = balancer.partition(counts, alpha=2.0).h
    assert h2 > h1


def test_no_active_experts(balancer):
    part = balancer.partition(np.zeros(16, dtype=int))
    assert part.h == 0
    assert len(part.hot_experts) == 0 and len(part.cold_experts) == 0


def test_deterministic_tie_break(balancer):
    counts = np.zeros(16, dtype=int)
    counts[[3, 7, 11]] = 5
    a = balancer.partition(counts)
    b = balancer.partition(counts)
    np.testing.assert_array_equal(a.hot_experts, b.hot_experts)
    np.testing.assert_array_equal(a.cold_experts, b.cold_experts)


@settings(max_examples=30)
@given(seed=st.integers(0, 1000), alpha=st.floats(0.1, 4.0))
def test_partition_property(seed, alpha):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, 50, size=64)
    balancer = LoadBalancer(25.6e9, 476e9)
    part = balancer.partition(counts, alpha=alpha)
    # Hot experts all have >= tokens than every cold expert.
    if len(part.hot_experts) and len(part.cold_experts):
        assert counts[part.hot_experts].min() >= counts[part.cold_experts].max()


def test_round_robin_by_intensity():
    counts = np.array([10, 50, 20, 40, 30, 0])
    ids = np.flatnonzero(counts > 0)
    shards = round_robin_by_intensity(counts, ids, 2)
    # Sorted by tokens desc: 1(50), 3(40), 4(30), 2(20), 0(10)
    np.testing.assert_array_equal(shards[0], [1, 4, 0])
    np.testing.assert_array_equal(shards[1], [3, 2])


def test_round_robin_single_device():
    counts = np.array([1, 2, 3])
    shards = round_robin_by_intensity(counts, np.arange(3), 1)
    assert len(shards) == 1 and len(shards[0]) == 3


def test_round_robin_validation():
    with pytest.raises(ValueError):
        round_robin_by_intensity(np.array([1]), np.array([0]), 0)


def test_auto_tuner_moves_toward_better_alpha():
    """With a cost function minimized at alpha=2, the tuner walks up."""

    def evaluate(counts: np.ndarray, alpha: float, context=None) -> float:
        return abs(alpha - 2.0)

    tuner = AlphaAutoTuner(evaluate=evaluate, alpha=1.0, period=4)
    counts = np.ones(8)
    for _ in range(16):
        tuner.observe(counts)
    assert tuner.alpha == 2.0
    assert tuner.retunes >= 1


def test_auto_tuner_stays_at_local_optimum():
    def evaluate(counts: np.ndarray, alpha: float, context=None) -> float:
        return (alpha - 1.0) ** 2

    tuner = AlphaAutoTuner(evaluate=evaluate, alpha=1.0, period=2)
    for _ in range(8):
        tuner.observe(np.ones(4))
    assert tuner.alpha == 1.0


def test_auto_tuner_window_bounded():
    tuner = AlphaAutoTuner(evaluate=lambda c, a, ctx=None: 0.0, window=3, period=100)
    for _ in range(10):
        tuner.observe(np.ones(2))
    assert len(tuner._history) == 3
