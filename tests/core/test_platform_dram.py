"""Cycle-level DRAM calibration threaded through the system models."""

from __future__ import annotations

import pytest

from repro.core.engine import Platform
from repro.core.strategies import Scheme
from repro.dram.calibrate import calibrated_effective_bandwidth
from repro.dram.config import LPDDR5X_8533
from repro.hw.specs import MONDE_DEVICE
from repro.moe import switch_large_tiny
from repro.ndp.engine import NDPGemmEngine
from repro.serving.simulator import CostModel


def test_calibrated_bandwidth_cached_and_plausible():
    a = calibrated_effective_bandwidth(LPDDR5X_8533)
    b = calibrated_effective_bandwidth(LPDDR5X_8533)
    assert a == b
    peak = LPDDR5X_8533.peak_bandwidth
    assert 0.5 * peak < a <= peak


def test_platform_dram_config_calibrates_engines():
    plain = Platform()
    calibrated = Platform(dram_config=LPDDR5X_8533)
    assert plain.monde_bandwidth == MONDE_DEVICE.effective_bandwidth
    expected = calibrated_effective_bandwidth(LPDDR5X_8533)
    assert calibrated.monde_bandwidth == expected
    assert all(
        e.mem_bandwidth == expected for e in calibrated.ndp_engines
    )
    assert calibrated.aggregate_monde_bandwidth == expected


def test_ndp_engine_from_dram():
    engine = NDPGemmEngine.from_dram(MONDE_DEVICE.ndp)
    assert engine.mem_bandwidth == calibrated_effective_bandwidth(LPDDR5X_8533)
    # Calibrated bandwidth stays in the same regime as the spec value,
    # so downstream timing is perturbed, not broken.
    ratio = engine.mem_bandwidth / MONDE_DEVICE.effective_bandwidth
    assert 0.5 < ratio < 2.0


def test_cost_model_from_dram_calibrated():
    model = switch_large_tiny()
    cm = CostModel.from_dram_calibrated(model, Scheme.MD_LB)
    assert cm.encode_seconds_per_token > 0
    assert cm.decode_seconds_per_token > 0
    # Spec-constant and DRAM-calibrated cost models should be close
    # but need not be identical.
    ref = CostModel.from_runtime(model, Scheme.MD_LB)
    assert cm.encode_seconds_per_token == pytest.approx(
        ref.encode_seconds_per_token, rel=0.5
    )
