"""Multi-GPU expert parallelism (Fig. 10) and expert sharding."""

import numpy as np
import pytest

from repro.core.engine import MoELayerEngine, Platform
from repro.core.multi_device import multi_gpu_layer_time, shard_experts
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128
from tests.conftest import make_counts


@pytest.fixture(scope="module")
def engine():
    return MoELayerEngine(nllb_moe_128(), Platform())


def test_shard_experts_partition():
    shards = shard_experts(128, 2)
    assert len(shards) == 2
    assert len(shards[0]) == 64 and len(shards[1]) == 64
    combined = np.concatenate(shards)
    np.testing.assert_array_equal(np.sort(combined), np.arange(128))


def test_shard_uneven():
    shards = shard_experts(10, 3)
    assert sum(len(s) for s in shards) == 10


def test_shard_validation():
    with pytest.raises(ValueError):
        shard_experts(8, 0)


def test_multi_gpu_no_pmove(engine):
    counts = make_counts(128, {0: 100, 64: 100, 100: 50})
    result = multi_gpu_layer_time(engine, counts, n_gpus=2)
    assert result.pmove_bytes == 0
    assert result.amove_bytes > 0  # all-to-all exchange
    assert result.scheme is Scheme.MULTI_GPU


def test_multi_gpu_uses_both_gpu_streams(engine):
    counts = make_counts(128, {0: 100, 127: 100})
    result = multi_gpu_layer_time(engine, counts, n_gpus=2)
    gpu0 = [s for s in result.timeline.stream("gpu").segments if s.label == "e"]
    gpu1 = result.timeline.stream("gpu1").segments
    assert gpu0 and gpu1


def test_single_gpu_has_no_exchange(engine):
    counts = make_counts(128, {0: 10})
    result = multi_gpu_layer_time(engine, counts, n_gpus=1)
    assert result.amove_bytes == 0


def test_multi_gpu_beats_gpu_pm_on_encoder_load(engine):
    """Resident experts beat on-demand PMove for broad activations."""
    counts = make_counts(128, {e: 30 for e in range(100)})
    pm = engine.layer_time(Scheme.GPU_PM, counts)
    mg = multi_gpu_layer_time(engine, counts, n_gpus=2)
    assert mg.seconds < pm.seconds


def test_multi_gpu_idles_on_decoder_load(engine):
    """With 2 activated experts on the same shard, the second GPU
    idles -- the paper's decoder inefficiency argument."""
    counts = make_counts(128, {0: 4, 1: 4})  # both on GPU0's shard
    result = multi_gpu_layer_time(engine, counts, n_gpus=2)
    assert not result.timeline.stream("gpu1").segments


def test_counts_shape_validated(engine):
    with pytest.raises(ValueError):
        multi_gpu_layer_time(engine, np.zeros(4), n_gpus=2)
