"""64-byte CXL NDP instruction codec (Fig. 4(a))."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.instructions import (
    INSTRUCTION_BYTES,
    CXLFlit,
    FusedActivation,
    NDPInstruction,
    Opcode,
)


def make_inst(**kw) -> NDPInstruction:
    defaults = dict(
        opcode=Opcode.GEMM,
        actin_addr=0x1000,
        actin_size=4096,
        wgt_addr=0x200000,
        wgt_size=1 << 20,
        actout_addr=0x3000,
        actout_size=8192,
        m=4,
        n=8192,
        k=2048,
        expert_id=17,
        device_id=2,
    )
    defaults.update(kw)
    return NDPInstruction(**defaults)


def test_wire_format_is_64_bytes():
    assert len(make_inst().encode()) == INSTRUCTION_BYTES == 64


def test_roundtrip():
    inst = make_inst()
    assert NDPInstruction.decode(inst.encode()) == inst


def test_roundtrip_all_opcodes():
    for op in (Opcode.NOP, Opcode.GEMM, Opcode.GEMM_RELU, Opcode.GEMM_GELU):
        inst = make_inst(opcode=op)
        assert NDPInstruction.decode(inst.encode()).opcode == op


def test_fused_activation_mapping():
    assert make_inst(opcode=Opcode.GEMM).fused_activation is FusedActivation.NONE
    assert make_inst(opcode=Opcode.GEMM_RELU).fused_activation is FusedActivation.RELU
    assert make_inst(opcode=Opcode.GEMM_GELU).fused_activation is FusedActivation.GELU


def test_max_field_values_roundtrip():
    inst = make_inst(
        actin_addr=(1 << 64) - 1,
        actin_size=(1 << 64) - 1,
        m=(1 << 24) - 1,
        n=(1 << 24) - 1,
        k=(1 << 24) - 1,
        expert_id=(1 << 16) - 1,
        device_id=255,
    )
    assert NDPInstruction.decode(inst.encode()) == inst


def test_field_overflow_rejected():
    with pytest.raises(ValueError):
        make_inst(m=1 << 24)
    with pytest.raises(ValueError):
        make_inst(actin_addr=1 << 64)
    with pytest.raises(ValueError):
        make_inst(expert_id=1 << 16)
    with pytest.raises(ValueError):
        make_inst(device_id=256)


def test_decode_wrong_length_rejected():
    with pytest.raises(ValueError):
        NDPInstruction.decode(b"\x00" * 63)


def test_is_ndp_flag_roundtrip():
    inst = make_inst(is_ndp=False)
    assert not NDPInstruction.decode(inst.encode()).is_ndp


def test_flit_validation():
    with pytest.raises(ValueError):
        CXLFlit(address=0, payload=b"short")
    with pytest.raises(ValueError):
        CXLFlit(address=-1, payload=b"\x00" * 64)
    flit = CXLFlit(address=0x40, payload=b"\x00" * 64, ndp_flag=True)
    assert flit.ndp_flag


@given(
    op=st.sampled_from([Opcode.GEMM, Opcode.GEMM_RELU, Opcode.GEMM_GELU]),
    actin=st.integers(0, (1 << 64) - 1),
    wgt=st.integers(0, (1 << 64) - 1),
    out=st.integers(0, (1 << 64) - 1),
    m=st.integers(0, (1 << 24) - 1),
    n=st.integers(0, (1 << 24) - 1),
    k=st.integers(0, (1 << 24) - 1),
    expert=st.integers(0, (1 << 16) - 1),
    device=st.integers(0, 255),
    ndp=st.booleans(),
)
def test_roundtrip_property(op, actin, wgt, out, m, n, k, expert, device, ndp):
    inst = NDPInstruction(
        opcode=op, actin_addr=actin, actin_size=m * k * 2, wgt_addr=wgt,
        wgt_size=k * n * 2, actout_addr=out, actout_size=m * n * 2,
        m=m, n=n, k=k, expert_id=expert, device_id=device, is_ndp=ndp,
    )
    raw = inst.encode()
    assert len(raw) == 64
    assert NDPInstruction.decode(raw) == inst
