"""Host driver: the Section 3.4 programming model end to end."""

import numpy as np
import pytest

from repro.core.driver import MoNDEDriver


@pytest.fixture
def rng():
    return np.random.default_rng(21)


@pytest.fixture
def driver():
    return MoNDEDriver()


def load(driver, rng, expert_id=0, d=32, ff=64, activation="relu"):
    w1 = rng.normal(size=(d, ff))
    w2 = rng.normal(size=(ff, d))
    return driver.load_expert(expert_id, w1, w2, activation=activation), w1, w2


def test_expert_weights_in_even_banks(driver, rng):
    handle, _, _ = load(driver, rng)
    layout = driver.device.layout
    for alloc in (handle.w1, handle.w2):
        for addr in layout.block_addresses(alloc):
            assert layout.mapper.decode(addr).bank % 2 == 0


def test_offloaded_activations_in_odd_banks(driver, rng):
    tensor = driver.offload(rng.normal(size=(4, 32)))
    layout = driver.device.layout
    for addr in layout.block_addresses(tensor.allocation):
        assert layout.mapper.decode(addr).bank % 2 == 1


def test_run_expert_matches_reference(driver, rng):
    handle, w1, w2 = load(driver, rng)
    x = rng.normal(size=(7, 32))
    actin = driver.offload(x)
    out, seconds = driver.run_expert(0, actin)
    result = driver.to_host(out)
    np.testing.assert_allclose(result, np.maximum(x @ w1, 0) @ w2)
    assert seconds > 0
    assert driver.kernel_launches == 2  # gemm+relu then gemm


def test_run_expert_gelu(driver, rng):
    from repro.moe.functional import gelu

    handle, w1, w2 = load(driver, rng, activation="gelu")
    x = rng.normal(size=(3, 32))
    out, _ = driver.run_expert(0, driver.offload(x))
    np.testing.assert_allclose(driver.to_host(out), gelu(x @ w1) @ w2)


def test_done_register_protocol(driver, rng):
    load(driver, rng)
    x = rng.normal(size=(2, 32))
    driver.run_expert(0, driver.offload(x))
    assert driver.cxl.poll_done()


def test_run_moe_layer_multiple_experts(driver, rng):
    _, w1a, w2a = load(driver, rng, expert_id=0)
    _, w1b, w2b = load(driver, rng, expert_id=1)
    groups = {
        0: rng.normal(size=(3, 32)),
        1: rng.normal(size=(2, 32)),
        2: np.zeros((0, 32)),  # empty group skipped
    }
    outputs, total = driver.run_moe_layer(groups)
    assert set(outputs) == {0, 1}
    np.testing.assert_allclose(
        outputs[0], np.maximum(groups[0] @ w1a, 0) @ w2a
    )
    np.testing.assert_allclose(
        outputs[1], np.maximum(groups[1] @ w1b, 0) @ w2b
    )
    assert total > 0


def test_unknown_expert_rejected(driver, rng):
    x = driver.offload(rng.normal(size=(1, 32)))
    with pytest.raises(KeyError):
        driver.run_expert(9, x)


def test_dimension_mismatch_rejected(driver, rng):
    load(driver, rng, d=32, ff=64)
    bad = driver.offload(rng.normal(size=(2, 16)).repeat(2, axis=1)[:, :16])
    with pytest.raises(ValueError):
        driver.run_expert(0, bad)


def test_bad_expert_weights_rejected(driver, rng):
    with pytest.raises(ValueError):
        driver.load_expert(0, rng.normal(size=(8, 16)), rng.normal(size=(8, 16)))
    with pytest.raises(ValueError):
        driver.load_expert(0, rng.normal(size=(8, 16)), rng.normal(size=(16, 9)))
    with pytest.raises(ValueError):
        driver.load_expert(
            0, rng.normal(size=(8, 16)), rng.normal(size=(16, 8)), activation="swish"
        )


def test_timing_scales_with_expert_size(rng):
    """Bigger experts take longer on the NDP (bandwidth-bound)."""
    driver = MoNDEDriver()
    d, ff = 256, 1024
    w1 = rng.normal(size=(d, ff))
    w2 = rng.normal(size=(ff, d))
    driver.load_expert(0, w1, w2)
    small_d, small_ff = 64, 128
    driver.load_expert(1, rng.normal(size=(small_d, small_ff)),
                       rng.normal(size=(small_ff, small_d)))
    _, t_big = driver.run_expert(0, driver.offload(rng.normal(size=(2, d))))
    _, t_small = driver.run_expert(1, driver.offload(rng.normal(size=(2, small_d))))
    assert t_big > t_small
