"""GPU expert buffer (LRU) behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import ExpertCache


def test_capacity_in_slots():
    cache = ExpertCache(capacity_bytes=10 * 64e6, expert_bytes=int(64e6))
    assert cache.capacity_slots == 10


def test_miss_then_hit():
    cache = ExpertCache(4 * 100, 100)
    hits, misses = cache.access(0, np.array([1, 2]))
    assert (hits, misses) == (0, 2)
    hits, misses = cache.access(0, np.array([1, 2]))
    assert (hits, misses) == (2, 0)
    assert cache.hit_rate == 0.5


def test_layers_are_distinct():
    cache = ExpertCache(4 * 100, 100)
    cache.access(0, np.array([7]))
    hits, misses = cache.access(1, np.array([7]))
    assert (hits, misses) == (0, 1)


def test_lru_eviction_order():
    cache = ExpertCache(2 * 100, 100)
    cache.access(0, np.array([1]))
    cache.access(0, np.array([2]))
    cache.access(0, np.array([1]))  # 1 is now MRU
    cache.access(0, np.array([3]))  # evicts 2
    assert (0, 1) in cache and (0, 3) in cache
    assert (0, 2) not in cache


def test_working_set_larger_than_cache_thrashes():
    """Cyclic access over a set larger than capacity yields ~0 reuse --
    the encoder regime of Fig. 6."""
    cache = ExpertCache(8 * 10, 10)
    for _ in range(5):
        for layer in range(4):
            cache.access(layer, np.arange(4))  # 16 distinct >> 8 slots
    assert cache.hit_rate == 0.0


def test_small_working_set_is_all_hits_after_warmup():
    """The decoder regime: hot experts recur and stay resident."""
    cache = ExpertCache(100 * 10, 10)
    for step in range(10):
        for layer in range(4):
            cache.access(layer, np.array([3, 5]))
    assert cache.hits == 9 * 4 * 2
    assert cache.hit_rate == pytest.approx(0.9)


def test_zero_capacity_always_misses():
    cache = ExpertCache(0, 100)
    hits, misses = cache.access(0, np.array([1]))
    assert (hits, misses) == (0, 1)
    hits, misses = cache.access(0, np.array([1]))
    assert (hits, misses) == (0, 1)
    assert len(cache) == 0


def test_clear():
    cache = ExpertCache(4 * 100, 100)
    cache.access(0, np.array([1]))
    cache.clear()
    assert (0, 1) not in cache


def test_validation():
    with pytest.raises(ValueError):
        ExpertCache(100, 0)
    with pytest.raises(ValueError):
        ExpertCache(-1, 100)


@settings(max_examples=30)
@given(
    capacity=st.integers(0, 16),
    accesses=st.lists(st.integers(0, 31), min_size=1, max_size=200),
)
def test_occupancy_never_exceeds_capacity(capacity, accesses):
    cache = ExpertCache(capacity * 10, 10)
    for e in accesses:
        cache.access(0, np.array([e]))
    assert len(cache) <= capacity
    assert cache.hits + cache.misses == len(accesses)
