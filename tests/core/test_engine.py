"""MoE layer engine: per-scheme timelines and overlap (Fig. 5)."""

import numpy as np
import pytest

from repro.core.cache import ExpertCache
from repro.core.engine import MoELayerEngine, Platform
from repro.core.strategies import Scheme
from repro.sim.trace import overlap_fraction
from tests.conftest import make_counts


@pytest.fixture(scope="module")
def engine():
    from repro.moe import nllb_moe_128

    return MoELayerEngine(nllb_moe_128(), Platform())


@pytest.fixture
def skewed_counts(engine):
    """2 hot experts + 30 cold (Fig. 3 shape)."""
    hot = {0: 1500, 1: 900}
    for e in range(10, 40):
        hot[e] = 3
    return make_counts(engine.model.n_experts, hot)


def test_counts_shape_validated(engine):
    with pytest.raises(ValueError):
        engine.layer_time(Scheme.IDEAL, np.zeros(4))
    with pytest.raises(ValueError):
        engine.layer_time(Scheme.IDEAL, -np.ones(engine.model.n_experts))


def test_ideal_has_no_transfers(engine, skewed_counts):
    result = engine.layer_time(Scheme.IDEAL, skewed_counts)
    assert result.pmove_bytes == 0 and result.amove_bytes == 0
    assert not result.timeline.stream("h2d").segments
    assert not result.timeline.stream("d2h").segments


def test_gpu_pm_transfers_every_active_expert(engine, skewed_counts):
    result = engine.layer_time(Scheme.GPU_PM, skewed_counts)
    n_active = int((skewed_counts > 0).sum())
    assert result.pmove_bytes == n_active * engine.pmove.expert_bytes
    assert result.n_active == n_active


def test_gpu_pm_slower_than_ideal(engine, skewed_counts):
    ideal = engine.layer_time(Scheme.IDEAL, skewed_counts)
    pm = engine.layer_time(Scheme.GPU_PM, skewed_counts)
    assert pm.seconds > 3 * ideal.seconds


def test_gpu_pm_cache_hits_skip_transfers(engine, skewed_counts):
    cache = ExpertCache(1e12, engine.pmove.expert_bytes)  # effectively infinite
    first = engine.layer_time(Scheme.GPU_PM, skewed_counts, layer_id=0, cache=cache)
    second = engine.layer_time(Scheme.GPU_PM, skewed_counts, layer_id=0, cache=cache)
    assert first.cache_misses == first.n_active
    assert second.cache_hits == second.n_active
    assert second.pmove_bytes == 0
    assert second.seconds < first.seconds


def test_md_am_moves_activations_not_parameters(engine, skewed_counts):
    result = engine.layer_time(Scheme.MD_AM, skewed_counts)
    assert result.pmove_bytes == 0
    assert result.amove_bytes == engine.amove.transfer_bytes(
        skewed_counts[skewed_counts > 0]
    )


def test_md_am_beats_gpu_pm_on_cold_dominated_load(engine):
    """When most activated experts are cold, replacing their PMove
    with AMove wins outright."""
    counts = make_counts(engine.model.n_experts, {e: 3 for e in range(40)})
    pm = engine.layer_time(Scheme.GPU_PM, counts)
    am = engine.layer_time(Scheme.MD_AM, counts)
    assert am.seconds < 0.5 * pm.seconds


def test_very_hot_experts_favor_lb_over_am(engine, skewed_counts):
    """With two mega-hot experts, pure MD+AM is compute-bound on the
    NDP; MD+LB moves them to the GPU and wins -- the point of the
    load balancer."""
    am = engine.layer_time(Scheme.MD_AM, skewed_counts)
    lb = engine.layer_time(Scheme.MD_LB, skewed_counts, alpha=2.0)
    assert lb.seconds < am.seconds


def test_md_lb_overlaps_gpu_and_monde(engine, skewed_counts):
    result = engine.layer_time(Scheme.MD_LB, skewed_counts, alpha=1.0)
    assert result.h >= 1
    gpu_segs = [s for s in result.timeline.stream("gpu").segments if s.label == "e"]
    monde_segs = result.timeline.stream("monde").segments
    assert gpu_segs and monde_segs
    assert overlap_fraction(monde_segs, gpu_segs) > 0 or overlap_fraction(
        gpu_segs, monde_segs
    ) > 0


def test_md_lb_beats_both_pure_schemes(engine, skewed_counts):
    pm = engine.layer_time(Scheme.GPU_PM, skewed_counts)
    am = engine.layer_time(Scheme.MD_AM, skewed_counts)
    lb = engine.layer_time(Scheme.MD_LB, skewed_counts)
    assert lb.seconds <= am.seconds
    assert lb.seconds < pm.seconds


def test_md_lb_workflow_times_recorded(engine, skewed_counts):
    result = engine.layer_time(Scheme.MD_LB, skewed_counts)
    assert result.t_gwf > 0 and result.t_mdwf > 0
    assert result.seconds == pytest.approx(
        max(result.t_gwf, result.t_mdwf), rel=1e-9
    )


def test_h_zero_reduces_lb_to_am(engine, skewed_counts):
    lb = engine.layer_time(Scheme.MD_LB, skewed_counts, alpha=0.0)
    am = engine.layer_time(Scheme.MD_AM, skewed_counts)
    assert lb.h == 0
    assert lb.seconds == pytest.approx(am.seconds, rel=1e-6)


def test_cpu_am_slower_than_md_am(engine, skewed_counts):
    cpu = engine.layer_time(Scheme.CPU_AM, skewed_counts)
    md = engine.layer_time(Scheme.MD_AM, skewed_counts)
    assert cpu.seconds > md.seconds


def test_empty_layer_costs_only_prologue(engine):
    counts = np.zeros(engine.model.n_experts, dtype=int)
    result = engine.layer_time(Scheme.MD_AM, counts, n_tokens=4)
    assert result.seconds > 0
    assert result.amove_bytes == 0


def test_multi_monde_distributes_over_devices():
    from repro.moe import nllb_moe_128

    platform = Platform(n_monde_devices=4)
    engine = MoELayerEngine(nllb_moe_128(), platform)
    counts = make_counts(128, {e: 4 for e in range(40)})
    result = engine.layer_time(Scheme.MD_AM, counts)
    used = [
        name
        for name in ("monde", "monde1", "monde2", "monde3")
        if result.timeline.stream(name).segments
    ]
    assert len(used) == 4


def test_multi_monde_faster_for_cold_heavy_layers():
    from repro.moe import nllb_moe_128

    counts = make_counts(128, {e: 4 for e in range(64)})
    one = MoELayerEngine(nllb_moe_128(), Platform(n_monde_devices=1))
    four = MoELayerEngine(nllb_moe_128(), Platform(n_monde_devices=4))
    t1 = one.layer_time(Scheme.MD_AM, counts).seconds
    t4 = four.layer_time(Scheme.MD_AM, counts).seconds
    assert t4 < t1
    assert t1 / t4 > 2.0


def test_dense_model_rejected():
    from repro.moe.zoo import t5_large_dense

    with pytest.raises(ValueError):
        MoELayerEngine(t5_large_dense(), Platform())


def test_platform_validation():
    with pytest.raises(ValueError):
        Platform(n_monde_devices=0)
