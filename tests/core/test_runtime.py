"""End-to-end runtime: the Fig. 6 measurement harness."""

import pytest

from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128
from repro.workloads import flores_like, xsum_like


@pytest.fixture(scope="module")
def runtime():
    sc = flores_like(batch=4)
    cfg = InferenceConfig(model=sc.model, batch=4, decode_steps=8, profile=sc.profile)
    return MoNDERuntime(cfg)


def test_encoder_result_accounting(runtime):
    r = runtime.encoder_result(Scheme.MD_LB)
    assert r.part == "encoder"
    assert r.n_tokens == 4 * 512
    assert r.seconds == pytest.approx(r.moe_seconds + r.dense_seconds)
    assert len(r.layer_results) == runtime.config.model.n_moe_encoder_layers
    assert r.throughput > 0


def test_decoder_result_accounting(runtime):
    r = runtime.decoder_result(Scheme.GPU_PM)
    assert r.n_tokens == 4 * 8
    n_moe = runtime.config.model.n_moe_decoder_layers
    assert len(r.layer_results) == 8 * n_moe


def test_results_cached(runtime):
    a = runtime.encoder_result(Scheme.IDEAL)
    b = runtime.encoder_result(Scheme.IDEAL)
    assert a is b


def test_ideal_is_fastest(runtime):
    ideal = runtime.encoder_result(Scheme.IDEAL)
    for scheme in (Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB, Scheme.CPU_AM):
        assert runtime.encoder_result(scheme).seconds >= ideal.seconds


def test_normalized_throughput_bounded(runtime):
    for scheme in (Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB):
        for part in ("encoder", "decoder"):
            v = runtime.normalized_throughput(scheme, part)
            assert 0 < v <= 1.0


def test_fig6_encoder_ordering(runtime):
    """GPU+PM < MD+AM < MD+LB < Ideal for the encoder."""
    pm = runtime.normalized_throughput(Scheme.GPU_PM, "encoder")
    am = runtime.normalized_throughput(Scheme.MD_AM, "encoder")
    lb = runtime.normalized_throughput(Scheme.MD_LB, "encoder")
    assert pm < am < lb <= 1.0


def test_fig6_encoder_speedup_band(runtime):
    """NLLB encoder: MD+LB over GPU+PM lands in the paper's band
    (6.7x average; we accept 4-11x)."""
    speedup = runtime.speedup(Scheme.MD_LB, Scheme.GPU_PM, "encoder")
    assert 4.0 < speedup < 11.0


def test_fig6_decoder_speedup_modest(runtime):
    """Decoder gains are much smaller (paper: 1.9x for NLLB)."""
    speedup = runtime.speedup(Scheme.MD_LB, Scheme.GPU_PM, "decoder")
    assert 1.0 < speedup < 3.0


def test_decoder_cache_hit_rate_high(runtime):
    """The decoder's recurring hot experts keep the GPU expert buffer
    effective -- the mechanism behind the modest decoder gains."""
    r = runtime.decoder_result(Scheme.GPU_PM)
    assert r.cache_hit_rate > 0.5


def test_encoder_cache_thrashes(runtime):
    r = runtime.encoder_result(Scheme.GPU_PM)
    assert r.cache_hit_rate < 0.2


def test_mean_h_positive_for_lb_encoder(runtime):
    r = runtime.encoder_result(Scheme.MD_LB)
    assert r.mean_h >= 1.0


def test_moe_fraction_dominates_gpu_pm_encoder(runtime):
    r = runtime.encoder_result(Scheme.GPU_PM)
    assert r.moe_fraction > 0.8


def test_result_part_dispatch(runtime):
    assert runtime.result(Scheme.IDEAL, "encoder").part == "encoder"
    assert runtime.result(Scheme.IDEAL, "decoder").part == "decoder"
    with pytest.raises(ValueError):
        runtime.result(Scheme.IDEAL, "middle")


def test_sl128_decoder_near_ideal():
    """Switch-Large decoder: GPU+PM is nearly Ideal (Fig. 6's 1.1x)."""
    sc = xsum_like(batch=4)
    cfg = InferenceConfig(model=sc.model, batch=4, decode_steps=16, profile=sc.profile)
    rt = MoNDERuntime(cfg)
    speedup = rt.speedup(Scheme.MD_LB, Scheme.GPU_PM, "decoder")
    assert 0.95 < speedup < 1.4


def test_multi_gpu_scheme_runs(runtime):
    r = runtime.encoder_result(Scheme.MULTI_GPU)
    assert r.seconds > 0
    assert r.scheme is Scheme.MULTI_GPU


def test_config_validation():
    with pytest.raises(ValueError):
        InferenceConfig(model=nllb_moe_128(), batch=0)
    with pytest.raises(ValueError):
        InferenceConfig(model=nllb_moe_128(), n_gpus=0)


def test_auto_tune_off_uses_fixed_alpha():
    sc = flores_like(batch=1)
    cfg = InferenceConfig(
        model=sc.model, batch=1, decode_steps=4, alpha=1.5,
        auto_tune=False, profile=sc.profile,
    )
    rt = MoNDERuntime(cfg)
    r = rt.encoder_result(Scheme.MD_LB)
    assert r.alpha_used == 1.5
