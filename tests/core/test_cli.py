"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_characterize(capsys):
    assert main(["characterize"]) == 0
    out = capsys.readouterr().out
    assert "Switch-Large-128" in out and "NLLB-MoE" in out
    assert "transfer ms" in out


def test_area_power(capsys):
    assert main(["area-power"]) == 0
    out = capsys.readouterr().out
    assert "systolic_pe" in out
    assert "1.6%" in out


def test_skew(capsys):
    assert main(["skew", "--workload", "flores", "--batch", "1"]) == 0
    out = capsys.readouterr().out
    assert "active" in out and "128+" in out


def test_evaluate_small(capsys):
    assert main([
        "evaluate", "--workload", "xsum", "--batch", "1", "--decode-steps", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "md+lb" in out and "vs Ideal" in out
    assert "MD+LB over GPU+PM" in out


def test_dram(capsys):
    assert main(["dram"]) == 0
    out = capsys.readouterr().out
    assert "sequential-read" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])
