"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_characterize(capsys):
    assert main(["characterize"]) == 0
    out = capsys.readouterr().out
    assert "Switch-Large-128" in out and "NLLB-MoE" in out
    assert "transfer ms" in out


def test_area_power(capsys):
    assert main(["area-power"]) == 0
    out = capsys.readouterr().out
    assert "systolic_pe" in out
    assert "1.6%" in out


def test_skew(capsys):
    assert main(["skew", "--workload", "flores", "--batch", "1"]) == 0
    out = capsys.readouterr().out
    assert "active" in out and "128+" in out


def test_evaluate_small(capsys):
    assert main([
        "evaluate", "--workload", "xsum", "--batch", "1", "--decode-steps", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "md+lb" in out and "vs Ideal" in out
    assert "MD+LB over GPU+PM" in out


def test_dram(capsys):
    assert main(["dram"]) == 0
    out = capsys.readouterr().out
    assert "sequential-read" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["bogus"])


COSIM_SMALL = [
    "--encode-us", "0.002", "--decode-us", "0.02", "--small-dram",
    "--bytes-per-token", "8192", "--max-blocks", "512",
    "--mean-prompt-tokens", "20", "--mean-decode-tokens", "5",
    "--requests", "30", "--max-iters", "12",
]


def test_cosim_single_run(capsys, tmp_path):
    trace = tmp_path / "cosim.dramtrace"
    code = main(
        ["cosim", "--rate", "1e6", "--export-trace", str(trace)] + COSIM_SMALL
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "closed-loop p99" in out
    assert "converged" in out
    assert "exported" in out
    from repro.workloads.trace_io import read_header

    _, n = read_header(trace)
    assert n > 0


def test_cosim_sweep(capsys, tmp_path):
    from repro.cosim import SweepResult

    output = tmp_path / "sweep.json"
    code = main(
        ["cosim", "sweep", "--rates", "2e4,1e6", "--output", str(output)]
        + COSIM_SMALL
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "closed p99" in out
    loaded = SweepResult.load(output)
    assert [p.rate for p in loaded.points] == [2e4, 1e6]


def test_cosim_mismatched_cost_flags(capsys):
    assert main(["cosim", "--encode-us", "1.0"]) == 2
    assert "together" in capsys.readouterr().err


def test_cosim_preset_and_config_are_exclusive(capsys, tmp_path):
    assert main(["cosim", "sweep", "--preset", "smoke", "--config", "x.json"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
    assert main(["cosim", "sweep", "--config", str(tmp_path / "no.json")]) == 2


def test_cosim_preset_flag_overrides(capsys, tmp_path):
    output = tmp_path / "sweep.json"
    code = main([
        "cosim", "sweep", "--preset", "smoke",
        "--rates", "2e4,1e6", "--requests", "30", "--output", str(output),
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    from repro.cosim import SweepResult

    loaded = SweepResult.load(output)
    assert [p.rate for p in loaded.points] == [2e4, 1e6]
    assert loaded.n_requests == 30


def test_cluster_sweep_from_config_file(capsys, tmp_path):
    from repro.cluster import ClusterSweepResult
    from repro.experiments import get_preset

    config = tmp_path / "cluster.json"
    get_preset("cluster_smoke").replaced(
        rates=(2e4, 1e6), n_requests=30
    ).save(config)
    output = tmp_path / "cluster_sweep.json"
    code = main([
        "cluster", "sweep", "--config", str(config),
        "--replicas", "1,2", "--policies", "replicated",
        "--output", str(output),
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "slo cap (req/s)" in out
    loaded = ClusterSweepResult.load(output)
    assert [c.replicas for c in loaded.curves] == [1, 2]
    assert all(len(c.points) == 2 for c in loaded.curves)
