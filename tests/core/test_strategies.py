"""PMove/AMove strategies and scheme taxonomy."""

import numpy as np

from repro.core.strategies import AMoveStrategy, PMoveStrategy, Scheme


def test_scheme_monde_flag():
    assert Scheme.MD_AM.uses_monde and Scheme.MD_LB.uses_monde
    assert not Scheme.GPU_PM.uses_monde
    assert not Scheme.IDEAL.uses_monde
    assert not Scheme.CPU_AM.uses_monde


def test_pmove_counts_only_activated_experts():
    pm = PMoveStrategy(d_model=2048, d_ff=8192)
    counts = np.array([5, 0, 3, 0, 1])
    assert pm.transfer_bytes(counts) == 3 * pm.expert_bytes


def test_pmove_expert_bytes():
    pm = PMoveStrategy(d_model=1024, d_ff=4096)
    assert pm.expert_bytes == 2 * 1024 * 4096 * 2


def test_pmove_respects_cache_mask():
    pm = PMoveStrategy(d_model=1024, d_ff=4096)
    counts = np.array([5, 2, 3])
    cached = np.array([True, False, True])
    assert pm.transfer_bytes(counts, cached) == 1 * pm.expert_bytes


def test_pmove_zero_activation():
    pm = PMoveStrategy(d_model=1024, d_ff=4096)
    assert pm.transfer_bytes(np.zeros(8, dtype=int)) == 0


def test_amove_counts_routed_tokens_both_ways():
    am = AMoveStrategy(d_model=2048)
    counts = np.array([5, 0, 3])
    assert am.input_bytes(counts) == 8 * 2048 * 2
    assert am.output_bytes(counts) == 8 * 2048 * 2
    assert am.transfer_bytes(counts) == 2 * 8 * 2048 * 2


def test_amove_matches_eq2_for_topk():
    """Sum of routed counts is B*S*top_k, so the per-expert accounting
    reduces to Eq. 2 scaled by top_k."""
    from repro.core.analytical import amove_bytes

    am = AMoveStrategy(d_model=1024)
    b, s, k = 2, 16, 2
    counts = np.zeros(8, dtype=int)
    counts[0] = b * s * k  # all events on one expert
    assert am.transfer_bytes(counts) == k * amove_bytes(b, s, 1024)
