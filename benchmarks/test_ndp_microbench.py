"""NDP core microbenchmark: expert latency across routed-token counts.

Companion to Fig. 2(c) on the device side: cold experts run at the
weight-streaming floor; the compute-bound knee appears once the token
count fills the MAC arrays.  Also exercises the functional systolic
path end to end.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.hw.gpu import GPUModel
from repro.hw.specs import A100_PCIE, MONDE_DEVICE, PCIE_GEN4_X16
from repro.hw.pcie import PCIeLink
from repro.ndp.engine import NDPGemmEngine

TOKENS = [1, 2, 4, 8, 16, 64, 256, 1024]
D_MODEL, D_FF = 2048, 8192


def build_rows():
    ndp = NDPGemmEngine(MONDE_DEVICE.ndp, MONDE_DEVICE.effective_bandwidth)
    gpu = GPUModel(A100_PCIE)
    pcie = PCIeLink(PCIE_GEN4_X16)
    expert_bytes = 2 * D_MODEL * D_FF * 2
    rows = []
    for t in TOKENS:
        ndp_ms = ndp.expert_ffn_time(t, D_MODEL, D_FF) * 1e3
        gpu_pm_ms = (
            pcie.transfer_time(expert_bytes) + gpu.expert_ffn_time(t, D_MODEL, D_FF)
        ) * 1e3
        rows.append([t, round(ndp_ms, 3), round(gpu_pm_ms, 3),
                     round(gpu_pm_ms / ndp_ms, 1)])
    return rows


def test_ndp_expert_latency(benchmark, report):
    rows = benchmark(build_rows)
    report(
        "ndp_microbench",
        format_table(
            ["tokens", "NDP ms", "GPU+PMove ms", "PMove/NDP"], rows
        ),
    )
    # Cold experts: NDP is an order of magnitude ahead of PMove+GPU.
    assert rows[0][3] > 10
    # The advantage erodes as experts get hot (NDP compute-bound).
    assert rows[-1][3] < rows[0][3]
    # Cold latencies sit at the streaming floor (flat across 1-4 tokens).
    assert rows[2][1] == pytest.approx(rows[0][1], rel=0.15)


def test_ndp_functional_throughput(benchmark):
    """Benchmark the functional systolic path itself."""
    engine = NDPGemmEngine(MONDE_DEVICE.ndp, MONDE_DEVICE.effective_bandwidth)
    rng = np.random.default_rng(0)
    a = rng.normal(size=(4, 256))
    b = rng.normal(size=(256, 512))

    out, _ = benchmark(lambda: engine.run_gemm(a, b))
    np.testing.assert_allclose(out, a @ b)
