"""Fig. 7(a): MD+LB speedup over GPU+PM across (d_model, E) variants.

Paper series: Switch variants d768-E64, d768-E128, d1024-E128 at
B in {1, 4}, encoder and decoder MoE speedup.  Shape: speedups grow
with model scale (larger d_model and E), reaching ~2-3.5x for the
encoder.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.moe.zoo import switch_variant
from repro.workloads.traces import RoutingProfile

VARIANTS = [(768, 64), (768, 128), (1024, 128)]


def build_rows():
    rows = []
    ordered = {}
    profile = RoutingProfile(decoder_min_hot_fraction=0.97)
    for d_model, n_experts in VARIANTS:
        model = switch_variant(d_model, n_experts)
        for batch in (1, 4):
            cfg = InferenceConfig(
                model=model, batch=batch, decode_steps=12, profile=profile
            )
            rt = MoNDERuntime(cfg)
            enc = rt.moe_speedup(Scheme.MD_LB, Scheme.GPU_PM, "encoder")
            dec = rt.moe_speedup(Scheme.MD_LB, Scheme.GPU_PM, "decoder")
            rows.append([f"d{d_model}-E{n_experts}", batch, round(enc, 2), round(dec, 2)])
            ordered.setdefault((d_model, n_experts), []).append(enc)
    return rows, ordered


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_fig7a(benchmark, report):
    rows, ordered = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "fig7a_model_scaling",
        format_table(["variant", "B", "enc MoE speedup", "dec MoE speedup"], rows),
    )
    avg = {k: sum(v) / len(v) for k, v in ordered.items()}
    # Shape: larger models benefit more (robustness to d_model/E scaling).
    assert avg[(768, 128)] > avg[(768, 64)]
    assert avg[(1024, 128)] > avg[(768, 64)]
    # All encoder speedups are material (> 1.3x).
    assert all(r[2] > 1.3 for r in rows)
