#!/usr/bin/env python
"""Standalone runner for the controller throughput benchmark.

Equivalent to ``python -m repro bench``; kept as a script so the perf
harness is discoverable next to its committed baseline and README.
Run from the repository root with ``PYTHONPATH=src``.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["bench", *sys.argv[1:]]))
