#!/usr/bin/env python
"""Standalone runner for the controller throughput benchmark.

Pass-through form (``python benchmarks/perf/run_controller_bench.py
--smoke``) is equivalent to ``python -m repro bench``; kept as a
script so the perf harness is discoverable next to its committed
baseline and README.  Run from the repository root with
``PYTHONPATH=src``.

``--refresh-baseline`` regenerates the committed
``benchmarks/perf/BENCH_controller.json``: a three-section document
(``full`` 1M-request batch runs with the O(n^2) reference, the
``open_loop_poisson`` 1M random trace, and a CI-comparable ``smoke``
section that ``check_regression.py`` gates pull requests against).
"""

from __future__ import annotations

import pathlib
import sys

from repro.cli import main

BASELINE = pathlib.Path(__file__).parent / "BENCH_controller.json"


def refresh_baseline() -> int:
    from repro.dram.bench import bench_controller, format_bench, write_bench

    full = bench_controller(n_requests=1_000_000, reference_requests=1_000_000)
    print(format_bench(full))
    poisson = bench_controller(
        n_requests=1_000_000,
        patterns=("random",),
        include_reference=False,
        arrival="poisson",
        arrival_gap=8.0,
    )
    print(format_bench(poisson))
    smoke = bench_controller(n_requests=20_000, reference_requests=5_000)
    print(format_bench(smoke))
    payload = {
        "benchmark": "dram-controller-baseline",
        "full": full,
        "open_loop_poisson": poisson,
        "smoke": smoke,
    }
    write_bench(payload, str(BASELINE))
    print(f"wrote {BASELINE}")
    return 0


if __name__ == "__main__":
    if "--refresh-baseline" in sys.argv[1:]:
        raise SystemExit(refresh_baseline())
    raise SystemExit(main(["bench", *sys.argv[1:]]))
