#!/usr/bin/env python
"""Standalone runner for the controller throughput benchmark.

Pass-through form (``python benchmarks/perf/run_controller_bench.py
--smoke``) is equivalent to ``python -m repro bench``; kept as a
script so the perf harness is discoverable next to its committed
baseline and README.  Run from the repository root with
``PYTHONPATH=src``.

``--refresh-baseline`` regenerates the committed
``benchmarks/perf/BENCH_controller.json``: a four-section document
(``full`` 1M-request batch runs with the O(n^2) reference, the
``open_loop_poisson`` 1M random trace, a CI-comparable ``smoke``
section that ``check_regression.py`` gates pull requests against, and
the ``parallel`` section -- serial vs parallel-drain wall clock on the
1M and 10M random traces across a worker grid).  The parallel traces
and worker grid are tunable (``--parallel-traces 1000000,10000000``,
``--parallel-workers 2,4``) since the 10M runs dominate refresh time.
"""

from __future__ import annotations

import pathlib
import sys

from repro.cli import main

BASELINE = pathlib.Path(__file__).parent / "BENCH_controller.json"


def _csv_ints(argv: list[str], flag: str, default: tuple[int, ...]) -> tuple[int, ...]:
    if flag in argv:
        raw = argv[argv.index(flag) + 1]
        return tuple(int(v) for v in raw.split(",") if v.strip())
    return default


def refresh_baseline(argv: list[str]) -> int:
    import json
    import os

    from repro.dram.bench import (
        bench_controller,
        bench_parallel_section,
        format_bench,
        write_bench,
    )

    full = bench_controller(n_requests=1_000_000, reference_requests=1_000_000)
    print(format_bench(full))
    poisson = bench_controller(
        n_requests=1_000_000,
        patterns=("random",),
        include_reference=False,
        arrival="poisson",
        arrival_gap=8.0,
    )
    print(format_bench(poisson))
    smoke = bench_controller(n_requests=20_000, reference_requests=5_000)
    print(format_bench(smoke))
    parallel = bench_parallel_section(
        trace_sizes=_csv_ints(argv, "--parallel-traces", (1_000_000, 10_000_000)),
        workers_grid=_csv_ints(argv, "--parallel-workers", (2, 4)),
    )
    print(json.dumps(parallel, indent=2))
    payload = {
        "benchmark": "dram-controller-baseline",
        # Stamped so consumers (check_regression.py) can tell whether
        # the parallel section's speedups were measured on hardware
        # where a process pool could possibly win (a 1-core container
        # cannot beat the serial drain).
        "cpu_count": os.cpu_count() or 1,
        "full": full,
        "open_loop_poisson": poisson,
        "smoke": smoke,
        "parallel": parallel,
    }
    write_bench(payload, str(BASELINE))
    print(f"wrote {BASELINE}")
    return 0


if __name__ == "__main__":
    if "--refresh-baseline" in sys.argv[1:]:
        raise SystemExit(refresh_baseline(sys.argv[1:]))
    raise SystemExit(main(["bench", *sys.argv[1:]]))
