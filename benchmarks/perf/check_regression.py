#!/usr/bin/env python
"""CI throughput-regression gate for the controller benchmark.

Compares a fresh ``repro bench --smoke`` payload against the ``smoke``
section of the committed baseline
(``benchmarks/perf/BENCH_controller.json``) and fails when any
pattern's throughput dropped by more than the tolerance (default 30%,
see README.md: wide enough to absorb CI-runner machine variance,
tight enough to catch an accidentally quadratic scheduler).

Both the simulate-only ``indexed`` number and the end-to-end
``arrays`` number are gated.  Patterns present in only one payload are
skipped (so adding a pattern does not break the gate).

Usage::

    python benchmarks/perf/check_regression.py CURRENT.json \
        [--baseline benchmarks/perf/BENCH_controller.json] \
        [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

GATED_IMPLEMENTATIONS = ("indexed", "arrays")

#: parallel-drain runs recorded on a multi-core machine must keep at
#: least this fraction of the serial throughput (a pool that *loses*
#: badly signals a serialization bug, not machine variance)
PARALLEL_MIN_SPEEDUP = 0.75


def check_parallel(baseline: dict) -> list[str]:
    """Gate the baseline's recorded ``parallel`` section.

    Bit-identity must hold on any hardware.  Speedup assertions are
    meaningful only when the recording machine had multiple cores: the
    committed baseline may have been recorded in a 1-core container
    (``cpu_count`` is stamped into the section), where a process pool
    cannot beat the serial drain -- those are skipped, not failed.
    """
    section = baseline.get("parallel")
    if not section:
        return []
    problems = []
    cores = section.get("cpu_count", baseline.get("cpu_count", 0)) or 0
    gate_speedups = cores > 1
    if not gate_speedups:
        print(
            f"parallel speedup gate skipped: baseline recorded on "
            f"{cores} core(s) (re-record on multi-core hardware via "
            "run_controller_bench.py --refresh-baseline)"
        )
    for size, entry in section.get("traces", {}).items():
        for workers, run in entry.get("workers", {}).items():
            if not run.get("identical", True):
                problems.append(
                    f"parallel {size} requests / {workers} workers: "
                    "stats diverged from the serial drain"
                )
            if not gate_speedups:
                continue
            speedup = run.get("speedup")
            if speedup is None:
                continue
            verdict = "REGRESSION" if speedup < PARALLEL_MIN_SPEEDUP else "ok"
            print(
                f"{'parallel':>12} {workers:>2}w/{size}: "
                f"speedup {speedup:.2f}x (floor {PARALLEL_MIN_SPEEDUP}) {verdict}"
            )
            if speedup < PARALLEL_MIN_SPEEDUP:
                problems.append(
                    f"parallel {size} requests / {workers} workers: "
                    f"speedup {speedup:.2f}x below {PARALLEL_MIN_SPEEDUP}x "
                    f"on a {cores}-core recording"
                )
    return problems


def compare(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Returns a list of human-readable regression descriptions."""
    baseline_smoke = baseline.get("smoke", baseline)
    regressions = []
    for pattern, base_entry in baseline_smoke["patterns"].items():
        cur_entry = current["patterns"].get(pattern)
        if cur_entry is None:
            continue
        for impl in GATED_IMPLEMENTATIONS:
            base_run = base_entry.get(impl)
            cur_run = cur_entry.get(impl)
            if base_run is None or cur_run is None:
                continue
            base_rps = base_run["requests_per_second"]
            cur_rps = cur_run["requests_per_second"]
            floor = (1.0 - tolerance) * base_rps
            verdict = "REGRESSION" if cur_rps < floor else "ok"
            print(
                f"{pattern:>12} {impl:>8}: {cur_rps:>12,.0f} req/s "
                f"(baseline {base_rps:,.0f}, floor {floor:,.0f}) {verdict}"
            )
            if cur_rps < floor:
                regressions.append(
                    f"{pattern}/{impl}: {cur_rps:,.0f} req/s is more than "
                    f"{tolerance:.0%} below the baseline {base_rps:,.0f}"
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="payload from `repro bench --smoke`")
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).parent / "BENCH_controller.json"),
    )
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        print("tolerance must be in (0, 1)", file=sys.stderr)
        return 2
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    current = json.loads(pathlib.Path(args.current).read_text())
    regressions = compare(baseline, current, args.tolerance)
    regressions += check_parallel(baseline)
    if regressions:
        print("\nthroughput regression(s) beyond tolerance:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("throughput within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
