"""Fig. 2(c): single-expert compute vs transfer latency on A100 + PCIe
Gen4 x16, across routed-token counts and d_model in {1024, 2048}.

Paper shape: transfer dwarfs compute for small token counts (up to
~30x for one routed token); achieved TFLOPS stays far below the A100
peak until thousands of tokens.
"""

from repro.analysis.characterize import compute_vs_transfer
from repro.analysis.report import format_table

TOKENS = [1, 4, 16, 64, 128, 256, 512, 1024, 2048]


def build_rows():
    rows = []
    for d_model in (1024, 2048):
        for r in compute_vs_transfer(TOKENS, d_model=d_model):
            rows.append(
                [d_model, r.tokens, round(r.compute_ms, 4), round(r.transfer_ms, 3),
                 round(r.transfer_to_compute, 1), round(r.achieved_tflops, 2)]
            )
    return rows


def test_fig2c(benchmark, report):
    rows = benchmark(build_rows)
    report(
        "fig2c_compute_vs_transfer",
        format_table(
            ["d_model", "tokens", "compute ms", "transfer ms", "transfer/compute",
             "TFLOPS"],
            rows,
        ),
    )
    d1024 = [r for r in rows if r[0] == 1024]
    # One routed token: transfer is >20x the compute (paper: up to 30x).
    assert d1024[0][4] > 20
    # The gap narrows as tokens grow.
    assert d1024[-1][4] < d1024[0][4] / 2
    # TFLOPS is far below the 312 TFLOPS peak even at 2048 tokens.
    assert all(r[5] < 312 * 0.8 for r in rows)
    # Compute grows with tokens once out of the memory-bound floor.
    assert d1024[-1][2] > d1024[0][2]
