"""Ablation: GPU expert-buffer replacement policy.

The paper argues prefetching cannot hide expert transfers because
routing is decided just before the FFN.  The buffer's *retention*
policy still matters: on decoder workloads (recurring hot experts)
any retention beats none, and LRU matches FIFO when the working set
fits; on encoder workloads (thrashing) no policy helps -- which is
exactly why the AMove path is needed.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.cache import ExpertCache, ReplacementPolicy
from repro.core.strategies import Scheme
from repro.workloads import flores_like


def build_rows():
    from repro.core.engine import MoELayerEngine, Platform

    sc = flores_like(batch=4)
    engine = MoELayerEngine(sc.model, Platform())
    from repro.workloads.traces import RoutingTraceGenerator

    gen = RoutingTraceGenerator(sc.model, 4, 512, profile=sc.profile, seed=0)
    rows = []
    stats = {}
    for part, trace in (
        ("decoder", [(rank, gen.decoder_step_counts(rank, step))
                     for step in range(24) for rank in range(6)]),
        ("encoder", [(rank, gen.encoder_layer_counts(rank))
                     for _ in range(4) for rank in range(6)]),
    ):
        for policy in ReplacementPolicy:
            cache = ExpertCache(8 * 1024**3, engine.pmove.expert_bytes, policy=policy)
            total = 0.0
            for rank, counts in trace:
                total += engine.layer_time(
                    Scheme.GPU_PM, counts, layer_id=rank, cache=cache
                ).seconds
            rows.append(
                [part, policy.value, round(total * 1e3, 1), round(cache.hit_rate, 3)]
            )
            stats[(part, policy)] = (total, cache.hit_rate)
    return rows, stats


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_ablation_cache_policy(benchmark, report):
    rows, stats = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "ablation_cache_policy",
        format_table(["part", "policy", "GPU+PM MoE ms", "hit rate"], rows),
    )
    # Decoder: retention is what kills PMove; LRU ~= FIFO >> NONE.
    dec_lru, dec_fifo, dec_none = (
        stats[("decoder", p)] for p in ReplacementPolicy
    )
    assert dec_lru[0] < 0.6 * dec_none[0]
    assert dec_lru[1] > 0.5 and dec_none[1] == 0.0
    assert abs(dec_lru[0] - dec_fifo[0]) / dec_lru[0] < 0.25
    # Encoder: the working set thrashes every policy.
    enc_lru, _, enc_none = (stats[("encoder", p)] for p in ReplacementPolicy)
    assert enc_lru[1] < 0.2
    assert enc_lru[0] > 0.8 * enc_none[0]
