"""Fig. 10: MD+LB vs a 2-GPU expert-parallel system (NLLB-MoE).

Paper shape: the 2-GPU system wins the encoder (many activated
experts per GPU, all parameters resident); for the auto-regressive
decoder MoNDE is comparable because most of the second GPU's experts
sit idle -- while one MoNDE device supplies the capacity of dozens of
GPUs.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.workloads import flores_like


def build_rows():
    rows = []
    ratios = {}
    for batch in (1, 4):
        sc = flores_like(batch=batch)
        cfg = InferenceConfig(
            model=sc.model, batch=batch, decode_steps=24, n_gpus=2,
            profile=sc.profile,
        )
        rt = MoNDERuntime(cfg)
        for part in ("encoder", "decoder"):
            lb = rt.normalized_throughput(Scheme.MD_LB, part)
            mg = rt.normalized_throughput(Scheme.MULTI_GPU, part)
            rows.append([batch, part, round(lb, 3), round(mg, 3)])
            ratios[(batch, part)] = mg / lb
    return rows, ratios


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_fig10(benchmark, report):
    rows, ratios = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "fig10_multi_gpu",
        format_table(["B", "part", "MD+LB (norm)", "2-GPU (norm)"], rows),
    )
    # Encoder: 2-GPU wins clearly.
    for batch in (1, 4):
        assert ratios[(batch, "encoder")] > 1.3
    # Decoder: MoNDE is comparable (within ~35%).
    for batch in (1, 4):
        assert ratios[(batch, "decoder")] < 1.9
        assert ratios[(batch, "decoder")] > 0.6
