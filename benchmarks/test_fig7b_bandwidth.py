"""Fig. 7(b): sensitivity to MoNDE memory bandwidth.

Paper series: NLLB-MoE (B=4), MD+AM and MD+LB MoE speedup over GPU+PM
at 0.5x / 1.0x / 2.0x device bandwidth with rate-matched NDP compute.
Shape: speedups increase with bandwidth; MD+LB >= MD+AM everywhere;
the LB-vs-AM gap narrows at higher bandwidth (H becomes conservative).
"""

import pytest

from repro.analysis.report import format_table
from repro.core.engine import Platform
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.hw.specs import MONDE_DEVICE
from repro.workloads import flores_like

FACTORS = (0.5, 1.0, 2.0)


def build_rows():
    sc = flores_like(batch=4)
    rows = []
    series = {}
    for factor in FACTORS:
        platform = Platform(monde_spec=MONDE_DEVICE.scaled_bandwidth(factor))
        cfg = InferenceConfig(
            model=sc.model, batch=4, decode_steps=24, profile=sc.profile
        )
        rt = MoNDERuntime(cfg, platform=platform)
        for part in ("encoder", "decoder"):
            am = rt.moe_speedup(Scheme.MD_AM, Scheme.GPU_PM, part)
            lb = rt.moe_speedup(Scheme.MD_LB, Scheme.GPU_PM, part)
            rows.append([f"{factor:g}x", part, round(am, 2), round(lb, 2)])
            series[(factor, part)] = (am, lb)
    return rows, series


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_fig7b(benchmark, report):
    rows, series = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "fig7b_bandwidth",
        format_table(["MoNDE BW", "part", "MD+AM", "MD+LB"], rows),
    )
    for part in ("encoder", "decoder"):
        am_series = [series[(f, part)][0] for f in FACTORS]
        lb_series = [series[(f, part)][1] for f in FACTORS]
        # Speedup grows with device bandwidth.
        assert am_series[0] < am_series[-1]
        assert lb_series[0] < lb_series[-1]
        # MD+LB at least matches MD+AM on the encoder; the decoder
        # allows a cache-warmup deficit over short generations, which
        # widens as bandwidth makes the pure-NDP path very cheap (the
        # paper's own gap also narrows to near-parity at 2x).
        slack = 0.99 if part == "encoder" else 0.80
        for am, lb in zip(am_series, lb_series):
            assert lb >= am * slack
    # The encoder LB/AM gap narrows with more bandwidth (H shrinks).
    gap = {
        f: series[(f, "encoder")][1] / series[(f, "encoder")][0] for f in FACTORS
    }
    assert gap[2.0] < gap[0.5]
