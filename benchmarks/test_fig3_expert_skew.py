"""Fig. 3: token distribution across experts (NLLB-MoE, encoder
layer 0, batch 4, top-2, E=128).

Paper histogram (average experts per routed-token bucket):

    tokens   0     1-3    4-7   8-15  16-31  32-63  64-127  128+
    experts  25.48 72.56  24.63 1.86  0.08   1.2    0.67    1.52
"""

import numpy as np

from repro.analysis.report import format_table
from repro.moe import nllb_moe_128
from repro.workloads import FIG3_BUCKETS, FIG3_REFERENCE, bucket_histogram
from repro.workloads.catalog import flores_like
from repro.workloads.traces import RoutingTraceGenerator

N_TRIALS = 16
BUCKET_LABELS = ["0", "1-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+"]


def build_histogram():
    sc = flores_like(batch=4)
    hists = []
    actives = []
    for seed in range(N_TRIALS):
        gen = RoutingTraceGenerator(
            nllb_moe_128(), batch=4, seq_len=512, profile=sc.profile, seed=seed
        )
        counts = gen.encoder_layer_counts(0)
        hists.append(bucket_histogram(counts, FIG3_BUCKETS))
        actives.append(int(np.count_nonzero(counts)))
    return np.mean(hists, axis=0), float(np.mean(actives))


def test_fig3(benchmark, report):
    mean_hist, mean_active = benchmark(build_histogram)
    rows = [
        [label, round(float(ours), 2), ref]
        for label, ours, ref in zip(BUCKET_LABELS, mean_hist, FIG3_REFERENCE)
    ]
    rows.append(["active experts", round(mean_active, 1), 102.5])
    report(
        "fig3_expert_skew",
        format_table(["routed tokens", "experts (ours)", "experts (paper)"], rows),
    )
    total = mean_hist.sum()
    cold = mean_hist[:3].sum()      # < 8 tokens
    hot = mean_hist[5:].sum()       # >= 32 tokens
    # Paper's load-bearing shape: the overwhelming majority of experts
    # are cold, a handful are hot.
    assert total == 128
    assert cold > 0.75 * total
    assert 1 <= hot <= 12
    # A couple of mega-hot experts in the 128+ bucket.
    assert 1 <= mean_hist[-1] <= 4
    # Most experts receive at least one token at layer 0 (paper: ~103).
    assert mean_active > 64
