"""Extension bench: per-scheme MoE-layer energy (joules).

Not a paper figure -- an extension quantifying the AMove-vs-PMove
argument in energy rather than latency, built on Table 3's power
modeling plus standard per-bit transport costs.
"""

import numpy as np
import pytest

from repro.analysis.energy import EnergyModel
from repro.analysis.report import format_table
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128
from repro.workloads.distributions import mixture_popularity, sample_expert_counts


def build_rows():
    rng = np.random.default_rng(11)
    popularity = mixture_popularity(128, rng, hot_fraction=0.9, n_hot=2)
    counts = sample_expert_counts(128, 4096, 0, rng, popularity=popularity)
    model = EnergyModel(nllb_moe_128())
    table = model.compare(counts)
    rows = [
        [s.value, round(b.link_j, 4), round(b.memory_j, 4),
         round(b.compute_j, 4), round(b.total_j, 4)]
        for s, b in table.items()
    ]
    return rows, table


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_energy_per_scheme(benchmark, report):
    rows, table = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "ablation_energy",
        format_table(["scheme", "link J", "memory J", "compute J", "total J"], rows),
    )
    assert table[Scheme.MD_AM].link_j < table[Scheme.GPU_PM].link_j / 20
    assert table[Scheme.MD_LB].total_j < table[Scheme.GPU_PM].total_j
    assert table[Scheme.IDEAL].total_j <= min(
        b.total_j for s, b in table.items() if s is not Scheme.IDEAL
    )
