"""Extension bench: serving latency under load, per scheme.

Not a paper figure -- the deployment view of Fig. 6: at a fixed
offered load, what latency does each scheme deliver, and how much
load can it sustain before the queue blows up?
"""

import pytest

from repro.analysis.report import format_table
from repro.core.strategies import Scheme
from repro.cosim import CosimConfig, run_load_sweep
from repro.serving.simulator import CostModel
from repro.workloads import flores_like

RATES = (0.5, 2.0, 6.0)  # requests/second
N_REQUESTS = 120


def build_rows():
    sc = flores_like(batch=1)
    rows = []
    sustained = {}
    for scheme in (Scheme.GPU_PM, Scheme.MD_LB, Scheme.IDEAL):
        cost = CostModel.from_runtime(
            sc.model, scheme, profile=sc.profile, ref_decode_steps=4
        )
        # planner=None: serving-only open loop; queue_limit 512
        # matches the historical standalone loop the deleted
        # repro.serving.load_sweep adapter preserved.
        _, runs = run_load_sweep(
            cost, scheme, None, list(RATES), n_requests=N_REQUESTS,
            mean_prompt_tokens=512, mean_decode_tokens=16,
            cosim_config=CosimConfig(queue_limit=512),
        )
        sweep = list(zip(RATES, (r.closed_loop for r in runs)))
        for rate, result in sweep:
            rows.append(
                [scheme.value, rate, round(result.mean_latency, 3),
                 round(result.latency_percentile(99), 3),
                 round(result.utilization, 2)]
            )
        sustained[scheme] = {rate: r for rate, r in sweep}
    return rows, sustained


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_serving_load(benchmark, report):
    rows, sustained = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "serving_load",
        format_table(
            ["scheme", "req/s", "mean latency s", "p99 s", "utilization"], rows
        ),
    )
    # At every offered load, MD+LB delivers lower latency than GPU+PM.
    for rate in RATES:
        pm = sustained[Scheme.GPU_PM][rate]
        lb = sustained[Scheme.MD_LB][rate]
        assert lb.mean_latency < pm.mean_latency
    # At the highest load GPU+PM is saturated while MD+LB still serves.
    top = RATES[-1]
    assert sustained[Scheme.GPU_PM][top].utilization > 0.95
    assert (
        sustained[Scheme.MD_LB][top].mean_latency
        < 0.5 * sustained[Scheme.GPU_PM][top].mean_latency
    )
    # Ideal bounds everything.
    for rate in RATES:
        assert (
            sustained[Scheme.IDEAL][rate].mean_latency
            <= sustained[Scheme.MD_LB][rate].mean_latency * 1.001
        )
