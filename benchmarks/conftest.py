"""Shared reporting for the per-figure benchmark harness.

Every bench regenerates one table or figure of the paper: it computes
the same rows/series the paper reports, prints them (run with ``-s``
to see them inline), writes them to ``benchmarks/results/``, and
asserts the paper's qualitative shape.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Returns a callable report(name, text): print + persist."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n=== {name} ===\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report
