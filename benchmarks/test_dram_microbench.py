"""DRAM simulator microbenchmark: access-pattern bandwidth table.

Validates the memory substrate that every NDP latency in the paper
reproduction rests on: the sequential-stream number is the "~512 GB/s"
of Section 3.1.
"""

from repro.analysis.report import format_table
from repro.dram.calibrate import BandwidthCalibrator
from repro.dram.config import LPDDR5X_8533


def build_rows():
    cal = BandwidthCalibrator()
    seq = cal.sequential_read(nbytes=1 << 19)
    rand = cal.random_read(nbytes=1 << 17)
    rows = [
        ["peak (bus limit)", round(LPDDR5X_8533.peak_bandwidth / 1e9, 1), "-", "-"],
        ["sequential read", round(seq.sustained_bandwidth / 1e9, 1),
         round(seq.efficiency, 2), round(seq.row_hit_rate, 2)],
        ["random 64B read", round(rand.sustained_bandwidth / 1e9, 1),
         round(rand.efficiency, 2), round(rand.row_hit_rate, 2)],
    ]
    return rows, seq, rand


def test_dram_bandwidth_table(benchmark, report):
    rows, seq, rand = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "dram_microbench",
        format_table(["pattern", "GB/s", "efficiency", "row-hit rate"], rows),
    )
    # Section 3.1: ~512 GB/s sustained from the 546 GB/s bus.
    assert 480e9 < seq.sustained_bandwidth < LPDDR5X_8533.peak_bandwidth
    assert rand.sustained_bandwidth < 0.3 * seq.sustained_bandwidth
