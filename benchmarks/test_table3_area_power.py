"""Table 3: MoNDE NDP area and power breakdown (28 nm, 1 GHz)."""

from repro.analysis.area_power import TABLE3_REFERENCE, AreaPowerModel
from repro.analysis.report import format_table


def build_rows():
    model = AreaPowerModel()
    rows = []
    for name, area, power in model.table():
        ref_area, ref_power = TABLE3_REFERENCE[name]
        rows.append([name, round(area, 3), ref_area, round(power, 3), ref_power])
    rows.append(
        ["TOTAL", round(model.total_area_mm2, 3), 2.954,
         round(model.total_power_w, 3), 1.810]
    )
    return rows, model


def test_table3(benchmark, report):
    rows, model = benchmark(build_rows)
    text = format_table(
        ["component", "area mm2", "paper", "power W", "paper"], rows
    ) + (
        f"\n\nDRAM-cell equivalent: {model.dram_cell_equivalent_gbit:.2f} Gb"
        f" (paper ~0.9 Gb)\n"
        f"Power overhead on 114.2 W base device:"
        f" {model.power_overhead_fraction()*100:.1f}% (paper 1.6%)"
    )
    report("table3_area_power", text)
    for name, area, ref_area, power, ref_power in rows[:-1]:
        assert abs(area - ref_area) / ref_area < 0.02
        assert abs(power - ref_power) / ref_power < 0.02
    assert abs(model.total_area_mm2 - 3.0) < 0.1
    assert abs(model.power_overhead_fraction() - 0.016) < 0.002
