"""Fig. 5: qualitative workflow comparison between schemes.

Regenerates the paper's timeline cartoon as ASCII Gantt charts from
the actual layer engine schedules, and asserts the structural
properties each row of Fig. 5 depicts:

- Ideal: GPU only, no link traffic.
- GPU+PM: PMove transfers serialize on PCIe; expert compute overlaps
  the remaining transfers.
- MD+AM: one AMove down, NDP expert chain, one AMove up.
- MD+LB: GPU and MoNDE workflows run concurrently.
"""

import numpy as np

from repro.core.engine import MoELayerEngine, Platform
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128
from repro.sim.trace import overlap_fraction, render_gantt
from repro.workloads.distributions import mixture_popularity, sample_expert_counts


def build_timelines():
    engine = MoELayerEngine(nllb_moe_128(), Platform())
    rng = np.random.default_rng(0)
    popularity = mixture_popularity(128, rng, hot_fraction=0.9, n_hot=2)
    counts = sample_expert_counts(128, 4096, 0, rng, popularity=popularity)
    results = {
        scheme: engine.layer_time(scheme, counts, alpha=1.0)
        for scheme in (Scheme.IDEAL, Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB)
    }
    return results


def test_fig5(benchmark, report):
    results = benchmark(build_timelines)
    charts = []
    for scheme, result in results.items():
        charts.append(
            f"--- {scheme.value} ({result.seconds*1e3:.2f} ms) ---\n"
            + render_gantt(result.timeline, width=64)
        )
    report("fig5_workflows", "\n\n".join(charts))

    ideal = results[Scheme.IDEAL]
    assert not ideal.timeline.stream("h2d").segments

    pm = results[Scheme.GPU_PM]
    transfers = pm.timeline.stream("h2d").segments
    computes = [s for s in pm.timeline.stream("gpu").segments if s.label == "e"]
    assert transfers and computes
    # Pipelining: compute overlaps later transfers.
    assert overlap_fraction(computes, transfers) > 0.3

    am = results[Scheme.MD_AM]
    assert am.timeline.stream("d2h").segments    # AMove in
    assert am.timeline.stream("h2d").segments    # AMove out
    assert am.timeline.stream("monde").segments

    lb = results[Scheme.MD_LB]
    gpu_e = [s for s in lb.timeline.stream("gpu").segments if s.label == "e"]
    monde_e = lb.timeline.stream("monde").segments
    assert overlap_fraction(monde_e, gpu_e + lb.timeline.stream("h2d").segments) > 0.3

    # Scheme ordering on this encoder-like layer.
    assert ideal.seconds < lb.seconds < pm.seconds
