"""Ablation: the H selection policy (DESIGN.md section 5).

Compares, on the same encoder-like MoE layer:

- H = 0 (all experts on the NDP: pure MD+AM),
- H = n_active (all experts via PMove on the GPU: pure GPU+PM),
- Eq. 6's H at alpha = 1,
- Eq. 6's H with the auto-tuned alpha (oracle sweep over the ladder).

Shape: the Eq. 6 balanced point beats both extremes, and tuning alpha
never hurts.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core.engine import MoELayerEngine, Platform
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128
from repro.workloads.distributions import mixture_popularity, sample_expert_counts

ALPHA_LADDER = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def build_rows():
    engine = MoELayerEngine(nllb_moe_128(), Platform())
    rng = np.random.default_rng(5)
    popularity = mixture_popularity(128, rng, hot_fraction=0.9, n_hot=2)
    counts = sample_expert_counts(128, 4096, 0, rng, popularity=popularity)

    all_ndp = engine.layer_time(Scheme.MD_AM, counts).seconds
    all_gpu = engine.layer_time(Scheme.GPU_PM, counts).seconds
    eq6 = engine.layer_time(Scheme.MD_LB, counts, alpha=1.0)
    sweep = {
        a: engine.layer_time(Scheme.MD_LB, counts, alpha=a).seconds
        for a in ALPHA_LADDER
    }
    best_alpha = min(sweep, key=sweep.get)
    rows = [
        ["H=0 (all NDP)", "-", round(all_ndp * 1e3, 3)],
        ["H=active (all GPU)", "-", round(all_gpu * 1e3, 3)],
        ["Eq.6, alpha=1", eq6.h, round(eq6.seconds * 1e3, 3)],
        [f"Eq.6, alpha={best_alpha:g} (tuned)", "-", round(sweep[best_alpha] * 1e3, 3)],
    ]
    return rows, all_ndp, all_gpu, eq6.seconds, sweep[best_alpha]


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_ablation_h_policy(benchmark, report):
    rows, all_ndp, all_gpu, eq6, tuned = benchmark.pedantic(
        build_rows, rounds=1, iterations=1
    )
    report("ablation_h_policy", format_table(["policy", "H", "layer ms"], rows))
    assert eq6 < all_gpu
    assert tuned <= eq6 * 1.001
    assert tuned < all_ndp
    assert tuned < all_gpu
