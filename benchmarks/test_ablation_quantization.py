"""Extension bench: expert quantization (bf16 vs int8).

Quantizing expert weights to int8 halves both PMove volume and the
NDP's weight-streaming time.  Because GPU+PM is transfer-bound and
MD+AM is stream-bound for cold experts, both speed up ~2x -- the
*relative* MoNDE advantage persists, countering the natural objection
"just quantize instead of adding NDP".
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.core.engine import MoELayerEngine, Platform
from repro.core.strategies import Scheme
from repro.moe import nllb_moe_128
from repro.workloads.distributions import mixture_popularity, sample_expert_counts


def build_rows():
    rng = np.random.default_rng(3)
    popularity = mixture_popularity(128, rng, hot_fraction=0.9, n_hot=2)
    counts = sample_expert_counts(128, 4096, 0, rng, popularity=popularity)

    rows = []
    results = {}
    for label, dtype_bytes in (("bf16", 2), ("int8", 1)):
        model = dataclasses.replace(nllb_moe_128(), dtype_bytes=dtype_bytes)
        engine = MoELayerEngine(model, Platform())
        pm = engine.layer_time(Scheme.GPU_PM, counts).seconds
        am = engine.layer_time(Scheme.MD_AM, counts).seconds
        lb = engine.layer_time(Scheme.MD_LB, counts, alpha=2.0).seconds
        rows.append(
            [label, round(pm * 1e3, 1), round(am * 1e3, 1), round(lb * 1e3, 1),
             round(pm / lb, 2)]
        )
        results[label] = (pm, am, lb)
    return rows, results


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_ablation_quantization(benchmark, report):
    rows, results = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "ablation_quantization",
        format_table(
            ["dtype", "GPU+PM ms", "MD+AM ms", "MD+LB ms", "PM/LB"], rows
        ),
    )
    bf16, int8 = results["bf16"], results["int8"]
    # int8 speeds up the transfer-bound baseline ~2x...
    assert 1.6 < bf16[0] / int8[0] < 2.2
    # ...but the MoNDE advantage survives quantization.
    assert int8[0] / int8[2] > 2.0
