"""Ablation: dropless routing vs capacity-factor token dropping.

The paper implements drop-less, padding-less routing (Section 4.1).
The classic alternative caps each expert at a capacity factor and
drops overflow tokens.  On skewed routing (Fig. 3), capacity-1.0
drops a large share of the hot experts' tokens -- quality loss the
dropless implementation avoids, at the cost of irregular expert
batches (which is what MoNDE's NDP handles well).
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.moe.moe_layer import MoELayer


def build_rows():
    rng = np.random.default_rng(9)
    d, ff, e, k = 32, 64, 16, 1
    bias = np.zeros(e)
    bias[0] = 6.0  # skewed router: expert 0 is hot
    tokens = rng.normal(size=(8, 32, d))

    rows = []
    stats = {}
    for label, capacity in (("dropless", None), ("cap 1.0", 1.0), ("cap 0.5", 0.5)):
        layer = MoELayer(
            d, ff, e, k, np.random.default_rng(0),
            popularity_bias=bias, capacity_factor=capacity,
        )
        layer(tokens)
        info = layer.last_routing
        total = 8 * 32 * k
        dropped_pct = 100.0 * info.dropped_tokens / total
        rows.append(
            [label, info.dropped_tokens, round(dropped_pct, 1),
             int(info.tokens_per_expert.max())]
        )
        stats[label] = info
    return rows, stats


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_ablation_routing(benchmark, report):
    rows, stats = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "ablation_routing",
        format_table(["routing", "dropped tokens", "dropped %", "max expert load"], rows),
    )
    assert stats["dropless"].dropped_tokens == 0
    assert stats["cap 1.0"].dropped_tokens > 0
    assert stats["cap 0.5"].dropped_tokens > stats["cap 1.0"].dropped_tokens
    # Dropless preserves the full hot-expert load.
    assert stats["dropless"].tokens_per_expert.max() > stats[
        "cap 1.0"
    ].tokens_per_expert.max()
