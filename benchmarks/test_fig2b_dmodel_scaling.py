"""Fig. 2(b): single-expert vs activation memory across d_model.

Paper series: expert size (quadratic), activation size for 6144 tokens
(linear), and their ratio, for d_model in {768..4096}.
"""

from repro.analysis.characterize import dmodel_scaling
from repro.analysis.report import format_table

D_MODELS = [768, 1024, 1536, 2048, 2560, 4096]


def build_rows():
    return [
        [r.d_model, round(r.expert_gb, 4), round(r.activation_gb, 4), round(r.ratio, 2)]
        for r in dmodel_scaling(D_MODELS, n_tokens=6144)
    ]


def test_fig2b(benchmark, report):
    rows = benchmark(build_rows)
    report(
        "fig2b_dmodel_scaling",
        format_table(
            ["d_model", "single expert GB", "act GB (6144 tok)", "expert/act"], rows
        ),
    )
    ratios = [r[3] for r in rows]
    # Quadratic-vs-linear: the ratio grows monotonically with d_model.
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    # Expert grows ~(4096/768)^2 = 28x across the sweep.
    assert rows[-1][1] / rows[0][1] > 25
    # Activations grow only linearly (~5.3x).
    assert rows[-1][2] / rows[0][2] < 6
