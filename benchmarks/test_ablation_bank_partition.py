"""Ablation: device memory layout (DESIGN.md section 5).

Two layout choices from Section 3.4, measured on the cycle-level DRAM
simulator:

- even/odd bank partitioning of weights vs activations, against
  co-locating both streams in the same banks;
- the ro-ba-bg-ra-co-ch address mapping against a naive row-major
  mapping, for sequential weight streams.
"""

import pytest

from repro.analysis.report import format_table
from repro.dram.address import MappingScheme
from repro.dram.calibrate import BandwidthCalibrator


def build_rows():
    cal = BandwidthCalibrator()
    part = cal.interleaved_streams(nbytes_each=1 << 17, partitioned=True)
    shared = cal.interleaved_streams(nbytes_each=1 << 17, partitioned=False)
    seq = cal.sequential_read(nbytes=1 << 19)
    naive = BandwidthCalibrator(scheme=MappingScheme.ROW_MAJOR).sequential_read(
        nbytes=1 << 19
    )
    rows = [
        ["weights+acts, partitioned banks", round(part.sustained_bandwidth / 1e9, 1)],
        ["weights+acts, shared banks", round(shared.sustained_bandwidth / 1e9, 1)],
        ["stream, ro-ba-bg-ra-co-ch", round(seq.sustained_bandwidth / 1e9, 1)],
        ["stream, naive row-major", round(naive.sustained_bandwidth / 1e9, 1)],
    ]
    return rows, part, shared, seq, naive


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_ablation_bank_partition(benchmark, report):
    rows, part, shared, seq, naive = benchmark.pedantic(
        build_rows, rounds=1, iterations=1
    )
    report(
        "ablation_bank_partition",
        format_table(["layout", "sustained GB/s"], rows),
    )
    # Partitioning the banks wins for mixed weight/activation traffic.
    assert part.sustained_bandwidth > 1.2 * shared.sustained_bandwidth
    # The paper's mapping is the difference between ~512 GB/s and an
    # order of magnitude less for contiguous accesses.
    assert seq.sustained_bandwidth > 8 * naive.sustained_bandwidth
    assert seq.efficiency > 0.85
