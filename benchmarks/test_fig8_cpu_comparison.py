"""Fig. 8: MoE latency of CPU expert computation (CPU+AM) vs MoNDE
(MD+AM) for NLLB-MoE at B in {1, 4, 16}.

Paper shape: MD+AM cuts MoE latency by ~9.1x (encoder) and ~1.9x
(decoder) on average, attributable to the device's higher internal
bandwidth (~2.7x nominal, more effective after NUMA/streaming
derating) and cheaper dispatch.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.workloads import flores_like

BATCHES = (1, 4, 16)


def build_rows():
    rows = []
    ratios = {"encoder": [], "decoder": []}
    for batch in BATCHES:
        sc = flores_like(batch=batch)
        cfg = InferenceConfig(
            model=sc.model, batch=batch, decode_steps=12, profile=sc.profile
        )
        rt = MoNDERuntime(cfg)
        for part in ("encoder", "decoder"):
            cpu = rt.result(Scheme.CPU_AM, part).moe_seconds
            md = rt.result(Scheme.MD_AM, part).moe_seconds
            rows.append(
                [batch, part, round(cpu * 1e3, 2), round(md * 1e3, 2),
                 round(cpu / md, 2)]
            )
            ratios[part].append(cpu / md)
    return rows, ratios


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_fig8(benchmark, report):
    rows, ratios = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "fig8_cpu_comparison",
        format_table(
            ["B", "part", "CPU+AM MoE ms", "MD+AM MoE ms", "CPU/MD"], rows
        ),
    )
    enc_avg = sum(ratios["encoder"]) / len(ratios["encoder"])
    dec_avg = sum(ratios["decoder"]) / len(ratios["decoder"])
    # Paper: 9.1x encoder, 1.9x decoder average latency reduction.
    assert 4.0 < enc_avg < 14.0
    assert 1.2 < dec_avg < 5.0
    # Encoder gains exceed decoder gains (bandwidth- vs latency-bound).
    assert enc_avg > dec_avg
    # MoNDE is faster in every cell.
    assert all(r[4] > 1.0 for r in rows)
