"""Fig. 2(a): MoE memory scaling with the number of experts.

Paper series: T5-L and NLLB-3.3B, dense and E in {64, 128, 256, 512},
stacked non-expert vs expert memory, against the 4x A100 (320 GB) and
4x V100 (128 GB) capacity lines.
"""

from repro.analysis.characterize import param_scaling
from repro.analysis.report import format_table
from repro.moe import nllb_moe_128, switch_large_128

A100X4_GB = 320
V100X4_GB = 128


def build_rows():
    rows = []
    for base in (switch_large_128(), nllb_moe_128()):
        for e in (0, 64, 128, 256, 512):
            for r in param_scaling(base, [e]):
                rows.append(
                    [r.model, e, round(r.non_expert_gb, 2), round(r.expert_gb, 1),
                     round(r.total_gb, 1)]
                )
    return rows


def test_fig2a(benchmark, report):
    rows = benchmark(build_rows)
    report(
        "fig2a_param_scaling",
        format_table(["model", "E", "non-expert GB", "expert GB", "total GB"], rows),
    )
    by_model = {}
    for model, e, non_e, exp, total in rows:
        by_model.setdefault(model.split("-E")[0].split("-dense")[0], {})[e] = total
    switch = [r for r in rows if "Switch" in r[0]]
    nllb = [r for r in rows if "NLLB" in r[0]]
    # Shape: E=128 Switch (~52 GB) exceeds V100x4; E>=256 NLLB exceeds
    # A100x4 -- the paper's capacity-wall argument.
    sw128 = next(r for r in switch if r[1] == 128)
    assert sw128[4] > 50
    nllb512 = next(r for r in nllb if r[1] == 512)
    assert nllb512[4] > A100X4_GB
    # Asymptotically linear in E.
    sw = {r[1]: r[3] for r in switch}
    assert abs(sw[512] / sw[256] - 2.0) < 0.01
