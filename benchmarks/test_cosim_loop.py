"""Extension bench: the closed-loop serving<->DRAM hockey stick.

Not a paper figure -- the memory-level extension of the serving-load
bench: at which offered load does DRAM queueing start inflating the
serving tail, and by how much does the open-loop replay under-report
it?  Regenerates the `repro cosim sweep` table on the scaled-down
co-simulation geometry and asserts the closed-loop shape.
"""

import pytest

from repro.core.strategies import Scheme
from repro.cosim import (
    CosimConfig,
    ExpertReplayPlanner,
    format_sweep,
    run_load_sweep,
    small_cosim_dram,
)
from repro.serving.simulator import CostModel

RATES = [2e4, 2e5, 1e6, 4e6]


def build_sweep(engine="fifo", mean_prompt_tokens=20, mean_decode_tokens=5):
    cost = CostModel(encode_seconds_per_token=2e-9, decode_seconds_per_token=2e-8)
    planner = ExpertReplayPlanner(
        n_experts=16, top_k=2, n_moe_layers=2,
        dram_config=small_cosim_dram(), bytes_per_token=8192,
        max_blocks_per_request=1024, expert_bytes=1 << 18, seed=1,
    )
    return run_load_sweep(
        cost, Scheme.MD_LB, planner, RATES,
        n_requests=60, seed=1,
        mean_prompt_tokens=mean_prompt_tokens,
        mean_decode_tokens=mean_decode_tokens,
        cosim_config=CosimConfig(max_iterations=16, engine=engine),
    )


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_cosim_hockey_stick(benchmark, report):
    sweep, runs = benchmark.pedantic(build_sweep, rounds=1, iterations=1)
    report("cosim_hockey_stick", format_sweep(sweep))

    points = sweep.points
    # Every grid point converged within its iteration budget.
    assert all(p.converged for p in points)
    assert all(p.n_iterations <= 16 for p in points)
    # Closed-loop p99 rises monotonically with offered load.
    closed = [p.closed_p99 for p in points]
    assert closed == sorted(closed)
    # Low load: feedback vanishes; saturation: it dominates.
    assert points[0].closed_p99 == pytest.approx(points[0].open_p99, rel=0.05)
    assert points[-1].closed_p99 > 5 * points[-1].open_p99
    # The DRAM idles less as offered load grows.
    idles = [p.dram_idle_cycles for p in points]
    assert idles == sorted(idles, reverse=True)


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_batching_recovers_saturation_tail(benchmark, report):
    """Continuous batching vs fifo on the decode-heavy mix: at the
    saturating grid point the batch-amortized weight stream keeps the
    closed-loop p99 at or below the fifo tail, and the batching sweep
    reports an SLO capacity."""

    def build_both():
        fifo, _ = build_sweep("fifo", mean_prompt_tokens=8, mean_decode_tokens=24)
        batching, _ = build_sweep("batching", mean_prompt_tokens=8, mean_decode_tokens=24)
        return fifo, batching

    fifo, batching = benchmark.pedantic(build_both, rounds=1, iterations=1)
    report("cosim_batching_vs_fifo", format_sweep(batching))

    assert fifo.engine == "fifo" and batching.engine == "batching"
    assert all(p.converged for p in fifo.points + batching.points)
    # The headline comparison only holds at saturation: at mid load
    # the stepped admission adds latency without the bandwidth win.
    assert batching.points[-1].closed_p99 <= fifo.points[-1].closed_p99
    # Both sweeps answer the capacity question under their auto SLO.
    assert fifo.slo_capacity_rps > 0
    assert batching.slo_capacity_rps > 0
    # Batching carries per-phase tails and a split surcharge.
    last = batching.points[-1]
    assert last.closed_ttft_p99 > 0
    assert last.extra_prefill_seconds_per_token + last.extra_decode_seconds_per_token > 0
