"""Fig. 9: multi-MoNDE scaling (1/2/4/8 devices) for the MoE layers of
NLLB-MoE, normalized to GPU+PM, at B in {1, 4, 16}.

Paper shape: encoder throughput scales with device count (more
aggregate bandwidth and compute); decoder throughput is flat across
device counts (too few routed tokens to fill multiple NDPs).
"""

import pytest

from repro.analysis.report import format_table
from repro.core.engine import Platform
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.workloads import flores_like

DEVICES = (1, 2, 4, 8)
BATCHES = (1, 4, 16)


def build_rows():
    rows = []
    series = {}
    for batch in BATCHES:
        sc = flores_like(batch=batch)
        baseline = MoNDERuntime(
            InferenceConfig(model=sc.model, batch=batch, decode_steps=8,
                            profile=sc.profile)
        )
        for part in ("encoder", "decoder"):
            base_moe = baseline.result(Scheme.GPU_PM, part).moe_seconds
            row = [batch, part]
            for n in DEVICES:
                rt = MoNDERuntime(
                    InferenceConfig(model=sc.model, batch=batch, decode_steps=8,
                                    profile=sc.profile),
                    platform=Platform(n_monde_devices=n),
                )
                moe = rt.result(Scheme.MD_LB, part).moe_seconds
                speedup = base_moe / moe
                row.append(round(speedup, 2))
                series[(batch, part, n)] = speedup
            rows.append(row)
    return rows, series


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_fig9(benchmark, report):
    rows, series = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report(
        "fig9_multi_monde",
        format_table(
            ["B", "part"] + [f"{n}MD+LB" for n in DEVICES], rows
        ),
    )
    # Encoder: more devices improve MoE throughput, saturating once
    # the GPU-side hot experts and per-layer dispatch floor dominate.
    for batch in (4, 16):
        values = [series[(batch, "encoder", n)] for n in DEVICES]
        assert max(values) > 1.2 * values[0]
        assert values[-1] >= 0.95 * values[0]
    # Decoder: gains are similar across device counts (the 1/4/16
    # routed tokens cannot fill multiple NDP units).
    for batch in BATCHES:
        values = [series[(batch, "decoder", n)] for n in DEVICES]
        assert max(values) / min(values) < 2.0
