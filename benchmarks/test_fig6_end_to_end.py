"""Fig. 6: end-to-end throughput normalized to the Ideal GPU.

Paper grid: {SL-128, N-MoE} x {B=1, B=4} x {encoder, decoder} x
{GPU+PM, MD+AM, MD+LB, Ideal}.  Text-quoted averages (across B):

- MD+LB over GPU+PM: 3.1x (SL enc), 1.1x (SL dec), 6.7x (N-MoE enc),
  1.9x (N-MoE dec).
"""

import pytest

from repro.analysis.report import format_table
from repro.core.runtime import InferenceConfig, MoNDERuntime
from repro.core.strategies import Scheme
from repro.workloads import flores_like, xsum_like

SCHEMES = (Scheme.GPU_PM, Scheme.MD_AM, Scheme.MD_LB, Scheme.IDEAL)


def build_grid():
    rows = []
    speedups = {}
    for sc_fn, tag in ((xsum_like, "SL-128"), (flores_like, "N-MoE")):
        for batch in (1, 4):
            sc = sc_fn(batch=batch)
            cfg = InferenceConfig(
                model=sc.model, batch=batch, decode_steps=24, profile=sc.profile
            )
            rt = MoNDERuntime(cfg)
            for part in ("encoder", "decoder"):
                normalized = {
                    s: rt.normalized_throughput(s, part) for s in SCHEMES
                }
                rows.append(
                    [tag, batch, part]
                    + [round(normalized[s], 3) for s in SCHEMES]
                )
                speedups.setdefault((tag, part), []).append(
                    rt.speedup(Scheme.MD_LB, Scheme.GPU_PM, part)
                )
    return rows, speedups


@pytest.mark.benchmark(min_rounds=1, max_time=1)
def test_fig6(benchmark, report):
    rows, speedups = benchmark.pedantic(build_grid, rounds=1, iterations=1)
    headers = ["model", "B", "part"] + [s.value for s in SCHEMES]
    lines = [format_table(headers, rows), "", "MD+LB over GPU+PM (avg across B):"]
    paper = {
        ("SL-128", "encoder"): 3.1,
        ("SL-128", "decoder"): 1.1,
        ("N-MoE", "encoder"): 6.7,
        ("N-MoE", "decoder"): 1.9,
    }
    check_rows = []
    for key, values in speedups.items():
        avg = sum(values) / len(values)
        check_rows.append([key[0], key[1], round(avg, 2), paper[key]])
    lines.append(format_table(["model", "part", "ours", "paper"], check_rows))
    report("fig6_end_to_end", "\n".join(lines))

    avg = {k: sum(v) / len(v) for k, v in speedups.items()}
    # Shape bands: encoder gains large, decoder gains modest; NLLB
    # gains exceed Switch gains on the encoder.
    assert 2.0 < avg[("SL-128", "encoder")] < 7.0       # paper 3.1
    assert 0.85 < avg[("SL-128", "decoder")] < 1.6      # paper 1.1
    assert 4.0 < avg[("N-MoE", "encoder")] < 12.0       # paper 6.7
    assert 1.1 < avg[("N-MoE", "decoder")] < 3.0        # paper 1.9
    assert avg[("N-MoE", "encoder")] > avg[("SL-128", "encoder")]
    # Normalized ordering holds in every encoder row: PM < AM < LB <= 1.
    for row in rows:
        if row[2] == "encoder":
            pm, am, lb, ideal = row[3:]
            assert pm < am < lb <= 1.0
            assert ideal == 1.0
