"""Table 2: workloads and system configurations."""

from repro.analysis.report import format_table
from repro.hw.specs import (
    A100_PCIE,
    MONDE_DEVICE,
    PCIE_GEN4_X16,
    XEON_4310,
)
from repro.moe import nllb_moe_128, switch_large_128


def build_rows():
    rows = []
    for cfg, gating, task in (
        (switch_large_128(), "top-1", "XSum LM"),
        (nllb_moe_128(), "top-2", "FLORES-200 MT"),
    ):
        rows.append(
            [cfg.name, round(cfg.non_expert_bytes / 1e9, 1),
             round(cfg.total_expert_bytes / 1e9, 1), cfg.d_model, cfg.n_experts,
             gating, task]
        )
    return rows


def test_table2(benchmark, report):
    rows = benchmark(build_rows)
    platform = [
        ["CPU", XEON_4310.name, f"{XEON_4310.mem_bandwidth/1e9:.0f} GB/s"],
        ["GPU", A100_PCIE.name, f"{A100_PCIE.mem_capacity/2**30:.0f} GiB"],
        ["MoNDE compute", "64x 4x4 systolic @1GHz",
         f"{MONDE_DEVICE.ndp.total_buffer_bytes//1024} KB buffers"],
        ["MoNDE memory", f"{MONDE_DEVICE.mem_bandwidth/1e9:.0f} GB/s",
         f"{MONDE_DEVICE.mem_capacity/2**30:.0f} GiB"],
        ["Interconnect", PCIE_GEN4_X16.name,
         f"{PCIE_GEN4_X16.raw_bandwidth/1e9:.0f} GB/s raw"],
    ]
    text = (
        format_table(
            ["model", "non-expert GB", "expert GB", "d_model", "E", "gating", "task"],
            rows,
        )
        + "\n\n"
        + format_table(["component", "part", "key figure"], platform)
    )
    report("table2_configs", text)

    # Paper values: 1.1 / 51.5 and 5.7 / 103.1 GB.
    sl = rows[0]
    assert abs(sl[1] - 1.1) < 0.2 and abs(sl[2] - 51.5) < 1.0
    nm = rows[1]
    assert abs(nm[1] - 5.7) < 0.5 and abs(nm[2] - 103.1) < 1.5
    assert sl[3] == 1024 and nm[3] == 2048
    assert sl[4] == nm[4] == 128
